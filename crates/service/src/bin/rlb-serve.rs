//! The resident linkage service binary: JSONL requests on stdin, JSONL
//! responses on stdout, one object per line (see `rlb_serve::protocol`).
//!
//! ```text
//! echo '{"op":"stats"}' | rlb-serve
//! ```
//!
//! Environment:
//! - `RLB_SERVE_MAX_LINE` — per-request line cap in bytes (default 4 MiB);
//! - `RLB_SERVE_METRICS` — where to write the `RUN_METRICS.json` artifact
//!   on exit (default `RUN_METRICS.json`; empty string disables it);
//! - plus the observability variables `rlb_obs::init` reads (`RLB_LOG`,
//!   `RLB_OBS_FILE`, `RLB_THREADS`).

use std::process::ExitCode;

fn main() -> ExitCode {
    rlb_obs::init();
    let started = std::time::Instant::now();
    let max_line = std::env::var("RLB_SERVE_MAX_LINE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(rlb_util::json::DEFAULT_MAX_LINE_BYTES);
    let mut engine = rlb_serve::Engine::new("serve");
    let result = rlb_serve::serve(
        &mut engine,
        std::io::stdin().lock(),
        std::io::stdout().lock(),
        max_line,
    );
    let metrics_path =
        std::env::var("RLB_SERVE_METRICS").unwrap_or_else(|_| "RUN_METRICS.json".into());
    if !metrics_path.is_empty() {
        if let Err(e) = rlb_obs::write_run_metrics(&metrics_path, started.elapsed()) {
            rlb_obs::warn!("failed to write {metrics_path}: {e}");
        }
    }
    match result {
        Ok(summary) => {
            rlb_obs::info!(
                "served {} requests ({} errors), {}",
                summary.requests,
                summary.errors,
                if summary.shut_down {
                    "shut down"
                } else {
                    "input closed"
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            rlb_obs::warn!("serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
