//! The resident linkage service binary: JSONL requests on stdin, JSONL
//! responses on stdout, one object per line (see `rlb_serve::protocol`) —
//! or, when `RLB_SERVE_ADDR` is set, a TCP listener multiplexing
//! concurrent JSONL sessions over the same engine (see
//! `rlb_serve::transport`).
//!
//! ```text
//! echo '{"op":"stats"}' | rlb-serve
//! RLB_SERVE_ADDR=127.0.0.1:0 rlb-serve   # prints {"listening":"<addr>"}
//! ```
//!
//! Environment:
//! - `RLB_SERVE_ADDR` — TCP bind address; unset/empty keeps stdin mode;
//! - `RLB_SERVE_SESSIONS` — concurrent-session cap in TCP mode (default 8);
//! - `RLB_SERVE_TIMEOUT_MS` — per-session idle/read timeout (default 30000);
//! - `RLB_SERVE_MAX_LINE` — per-request line cap in bytes (default 4 MiB);
//! - `RLB_SERVE_METRICS` — where to write the `RUN_METRICS.json` artifact
//!   on exit (default `RUN_METRICS.json`; empty string disables it);
//! - plus the observability variables `rlb_obs::init` reads (`RLB_LOG`,
//!   `RLB_OBS_FILE`, `RLB_THREADS`).
//!
//! Invalid numeric values warn once and fall back to their defaults (the
//! `RLB_THREADS` validation policy); they are never silently swallowed.

use std::io::Write;
use std::process::ExitCode;
use std::sync::RwLock;

fn main() -> ExitCode {
    rlb_obs::init();
    let started = std::time::Instant::now();
    let config = rlb_serve::TransportConfig::from_env();
    let engine = RwLock::new(rlb_serve::Engine::new("serve"));
    let addr = std::env::var("RLB_SERVE_ADDR")
        .ok()
        .filter(|a| !a.trim().is_empty());
    let result = match addr {
        Some(addr) => serve_tcp(&engine, addr.trim(), &config),
        None => rlb_serve::serve(
            &engine,
            std::io::stdin().lock(),
            std::io::stdout().lock(),
            config.max_line_bytes,
        )
        .map(|summary| (summary.requests, summary.errors, summary.shut_down)),
    };
    let metrics_path =
        std::env::var("RLB_SERVE_METRICS").unwrap_or_else(|_| "RUN_METRICS.json".into());
    if !metrics_path.is_empty() {
        if let Err(e) = rlb_obs::write_run_metrics(&metrics_path, started.elapsed()) {
            rlb_obs::warn!("failed to write {metrics_path}: {e}");
        }
    }
    match result {
        Ok((requests, errors, shut_down)) => {
            rlb_obs::info!(
                "served {requests} requests ({errors} errors), {}",
                if shut_down {
                    "shut down"
                } else {
                    "input closed"
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            rlb_obs::warn!("serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// TCP mode: bind, announce the resolved address on stdout as one JSON line
/// (`{"listening":"127.0.0.1:4100"}` — with port 0 the kernel picks, so
/// scripted clients parse this line to find the server), then serve until a
/// `shutdown` request.
fn serve_tcp(
    engine: &RwLock<rlb_serve::Engine>,
    addr: &str,
    config: &rlb_serve::TransportConfig,
) -> std::io::Result<(u64, u64, bool)> {
    let listener = std::net::TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    {
        let mut stdout = std::io::stdout().lock();
        writeln!(stdout, "{{\"listening\":\"{local}\"}}")?;
        stdout.flush()?;
    }
    rlb_obs::info!(
        "listening on {local} (max {} sessions, {}ms idle timeout)",
        config.max_sessions,
        config.timeout_ms
    );
    let summary = rlb_serve::serve_tcp(engine, listener, config)?;
    rlb_obs::info!(
        "{} sessions served ({} rejected at the cap)",
        summary.sessions,
        summary.rejected
    );
    Ok((summary.requests, summary.errors, summary.shut_down))
}
