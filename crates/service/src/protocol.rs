//! The stdin-JSONL wire protocol in front of [`Engine`].
//!
//! One JSON object per line in, one per line out. Every request carries an
//! `"op"` field; every response carries `"ok"` (`true` with op-specific
//! payload, `false` with an `"error"` string). Malformed, oversized or
//! over-deep lines get an error response and the stream keeps going — only
//! `shutdown`, end of input, or a real I/O failure stop the loop.
//!
//! `link` is an exact scan unless the request carries an `"nprobe"` field,
//! which switches to IVF-probed retrieval over the incrementally trained
//! index (`RLB_ANN_*` knobs); the response then echoes `"mode":"ann"` and
//! the probe count. `stats` reports the ANN layer's state under `"ann"`.
//!
//! ```text
//! {"op":"ingest","attributes":["name"],"left":[["acme"]],"right":[["acme"]],
//!  "pairs":[{"left":0,"right":0,"match":true,"split":"train"}]}
//! {"op":"link","k":5,"limit":100}
//! {"op":"link","k":5,"nprobe":8}
//! {"op":"assess"}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! Every request runs inside an `rlb-obs` span under its own trace id
//! (`<run-trace>/<sequence>`, see `rlb_obs::next_request_trace`), echoed as
//! `"trace"` in every response, and feeds per-op counters (`serve.<op>`),
//! the shared latency histogram `serve.request_us`, and a per-op histogram
//! `serve.<op>_us`. The `stats` op surfaces the full counter/histogram
//! snapshot; the `metrics` op additionally reports since-last-call deltas
//! per counter and a `"window"` summary per histogram (rolling p50/p99 per
//! op between consecutive `metrics` calls), so a client can watch the
//! engine live without touching `RUN_METRICS.json`.

use crate::engine::{Engine, IngestBatch, IngestPair, Split};
use rlb_util::json::{read_line, write_line, JsonLine, Value, MAX_DEPTH};
use rlb_util::ToJson;
use std::io::{BufRead, Write};
use std::sync::RwLock;

/// Default number of neighbours per query for `link`.
pub const DEFAULT_K: usize = 5;
/// Default cap on candidate pairs echoed in a `link` response (`"total"`
/// always reports the uncapped count).
pub const DEFAULT_LINK_LIMIT: usize = 100;

/// What the serve loop saw, returned to the binary for logging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered (ok or error).
    pub requests: u64,
    /// Error responses among them.
    pub errors: u64,
    /// Whether the loop ended via `shutdown` (vs. end of input).
    pub shut_down: bool,
}

/// Per-op `&'static` metric names (the obs layer interns by static name).
fn op_metrics(op: &str) -> Option<(&'static str, &'static str)> {
    match op {
        "ingest" => Some(("serve.ingest", "serve.ingest_us")),
        "link" => Some(("serve.link", "serve.link_us")),
        "assess" => Some(("serve.assess", "serve.assess_us")),
        "stats" => Some(("serve.stats", "serve.stats_us")),
        "metrics" => Some(("serve.metrics", "serve.metrics_us")),
        "shutdown" => Some(("serve.shutdown", "serve.shutdown_us")),
        _ => None,
    }
}

pub(crate) fn err_response(msg: impl Into<String>) -> Value {
    Value::Obj(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(msg.into())),
    ])
}

fn ok_response(fields: Vec<(String, Value)>) -> Value {
    let mut obj = vec![("ok".into(), Value::Bool(true))];
    obj.extend(fields);
    Value::Obj(obj)
}

/// Runs the request loop until `shutdown`, end of input, or an I/O error.
/// `max_line_bytes` bounds each request line (`RLB_SERVE_MAX_LINE` in the
/// binary); responses are flushed per line so a piped client can converse.
///
/// The engine arrives behind the service's [`RwLock`]; each request takes
/// the lock appropriate to its op (see [`handle_request`]), so a stdin loop
/// and any number of socket sessions can share one engine.
pub fn serve<R: BufRead, W: Write>(
    engine: &RwLock<Engine>,
    mut input: R,
    mut output: W,
    max_line_bytes: usize,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    loop {
        let request = match read_line(&mut input, max_line_bytes, MAX_DEPTH)? {
            JsonLine::Eof => break,
            JsonLine::Bad(e) => {
                summary.requests += 1;
                summary.errors += 1;
                rlb_obs::counter_add("serve.bad_line", 1);
                write_line(&mut output, &err_response(e.to_string()))?;
                output.flush()?;
                continue;
            }
            JsonLine::Record(v) => v,
        };
        let (response, shutdown) = handle_request(engine, &request);
        summary.requests += 1;
        if response.get("ok").and_then(Value::as_bool) != Some(true) {
            summary.errors += 1;
        }
        write_line(&mut output, &response)?;
        output.flush()?;
        if shutdown {
            summary.shut_down = true;
            break;
        }
    }
    Ok(summary)
}

/// Dispatches one parsed request; returns the response and whether to stop.
/// Public so the service bench can drive the protocol without pipes.
///
/// Allocates the next global `<run>/<seq>` trace id; socket sessions use
/// [`handle_request_traced`] with their own per-session ids instead.
pub fn handle_request(engine: &RwLock<Engine>, request: &Value) -> (Value, bool) {
    let trace = rlb_obs::next_request_trace();
    handle_request_traced(engine, request, &trace)
}

/// [`handle_request`] under a caller-supplied trace scope. The engine lock
/// is taken per op: `ingest` is the only writer; `link`, `assess`, `stats`
/// and `metrics` take read locks and run concurrently across sessions
/// (`assess` and `metrics` keep their internal bookkeeping behind their own
/// mutexes, so `&self` is honest). `shutdown` touches no engine state.
pub fn handle_request_traced(
    engine: &RwLock<Engine>,
    request: &Value,
    trace: &rlb_obs::TraceScope,
) -> (Value, bool) {
    let started = std::time::Instant::now();
    let op = match request.get("op").and_then(Value::as_str) {
        Some(op) => op.to_owned(),
        None => {
            let mut response = err_response("request has no \"op\" field");
            if let Value::Obj(fields) = &mut response {
                fields.insert(1, ("trace".into(), Value::Str(trace.id().into())));
            }
            rlb_obs::counter_add("serve.errors", 1);
            return (response, false);
        }
    };
    let _span = rlb_obs::span!("serve.request", "{op}");
    let (mut response, shutdown) = match op.as_str() {
        "ingest" => (
            match engine.write() {
                Ok(mut engine) => handle_ingest(&mut engine, request),
                Err(_) => err_response(POISONED),
            },
            false,
        ),
        "link" => (
            match engine.read() {
                Ok(engine) => handle_link(&engine, request),
                Err(_) => err_response(POISONED),
            },
            false,
        ),
        "assess" => (
            match engine.read() {
                Ok(engine) => match engine.assess() {
                    Ok(a) => ok_response(vec![("assessment".into(), a.to_json())]),
                    Err(e) => err_response(e),
                },
                Err(_) => err_response(POISONED),
            },
            false,
        ),
        "stats" => (
            match engine.read() {
                Ok(engine) => handle_stats(&engine),
                Err(_) => err_response(POISONED),
            },
            false,
        ),
        "metrics" => (
            match engine.read() {
                Ok(engine) => handle_metrics(&engine),
                Err(_) => err_response(POISONED),
            },
            false,
        ),
        "shutdown" => (ok_response(vec![]), true),
        other => (err_response(format!("unknown op {other:?}")), false),
    };
    if let Value::Obj(fields) = &mut response {
        fields.insert(1, ("trace".into(), Value::Str(trace.id().into())));
    }
    let elapsed_us = started.elapsed().as_micros() as u64;
    rlb_obs::histogram_record("serve.request_us", elapsed_us);
    if let Some((counter, histogram)) = op_metrics(&op) {
        rlb_obs::counter_add(counter, 1);
        rlb_obs::histogram_record(histogram, elapsed_us);
    }
    if response.get("ok").and_then(Value::as_bool) != Some(true) {
        rlb_obs::counter_add("serve.errors", 1);
    }
    (response, shutdown)
}

/// A writer panicked while holding the engine lock; readers degrade to a
/// structured error per request instead of crashing the session.
const POISONED: &str = "engine lock poisoned by an earlier panic";

fn parse_records(v: &Value, field: &str) -> Result<Vec<Vec<String>>, String> {
    let Some(rows) = v.get(field) else {
        return Ok(Vec::new());
    };
    let rows = rows
        .as_arr()
        .ok_or_else(|| format!("\"{field}\" must be an array of records"))?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let values = row
                .as_arr()
                .ok_or_else(|| format!("{field}[{i}] must be an array of strings"))?;
            values
                .iter()
                .enumerate()
                .map(|(j, s)| {
                    s.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("{field}[{i}][{j}] must be a string"))
                })
                .collect()
        })
        .collect()
}

fn parse_pairs(v: &Value) -> Result<Vec<IngestPair>, String> {
    let Some(pairs) = v.get("pairs") else {
        return Ok(Vec::new());
    };
    let pairs = pairs
        .as_arr()
        .ok_or_else(|| "\"pairs\" must be an array".to_string())?;
    pairs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let id = |field: &str| -> Result<u32, String> {
                p.get(field)
                    .and_then(Value::as_f64)
                    .filter(|x| x.fract() == 0.0 && *x >= 0.0 && *x <= u32::MAX as f64)
                    .map(|x| x as u32)
                    .ok_or_else(|| format!("pairs[{i}].{field} must be a record id"))
            };
            Ok(IngestPair {
                left: id("left")?,
                right: id("right")?,
                is_match: p
                    .get("match")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| format!("pairs[{i}].match must be a boolean"))?,
                split: Split::parse(p.get("split").and_then(Value::as_str).unwrap_or("train"))?,
            })
        })
        .collect()
}

fn handle_ingest(engine: &mut Engine, request: &Value) -> Value {
    let batch = (|| -> Result<IngestBatch, String> {
        let attributes = match request.get("attributes") {
            None => None,
            Some(a) => Some(
                a.as_arr()
                    .ok_or_else(|| "\"attributes\" must be an array of strings".to_string())?
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| "\"attributes\" must be an array of strings".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        Ok(IngestBatch {
            attributes,
            left: parse_records(request, "left")?,
            right: parse_records(request, "right")?,
            pairs: parse_pairs(request)?,
        })
    })();
    match batch.and_then(|b| engine.ingest(b)) {
        Ok(stats) => ok_response(vec![
            ("left".into(), Value::Num(stats.left as f64)),
            ("right".into(), Value::Num(stats.right as f64)),
            ("pairs".into(), Value::Num(stats.pairs as f64)),
            ("vocab".into(), Value::Num(stats.vocab as f64)),
        ]),
        Err(e) => err_response(e),
    }
}

fn handle_link(engine: &Engine, request: &Value) -> Value {
    let usize_field = |field: &str, default: usize| -> Result<usize, String> {
        match request.get(field) {
            None => Ok(default),
            Some(v) => v
                .as_f64()
                .filter(|x| x.fract() == 0.0 && *x >= 1.0)
                .map(|x| x as usize)
                .ok_or_else(|| format!("\"{field}\" must be a positive integer")),
        }
    };
    let (k, limit) = match (
        usize_field("k", DEFAULT_K),
        usize_field("limit", DEFAULT_LINK_LIMIT),
    ) {
        (Ok(k), Ok(limit)) => (k, limit),
        (Err(e), _) | (_, Err(e)) => return err_response(e),
    };
    // An "nprobe" field switches to IVF-probed retrieval; without it the
    // exact scan runs, so pre-ANN clients keep their exact twin guarantees.
    let nprobe = match request.get("nprobe") {
        None => None,
        Some(_) => match usize_field("nprobe", 0) {
            Ok(n) => Some(n),
            Err(e) => return err_response(e),
        },
    };
    let retrieval = match nprobe {
        None => engine.link(k),
        Some(n) => engine.link_ann(k, Some(n)),
    };
    let candidates = retrieval.candidates(k);
    let echoed: Vec<Value> = candidates
        .iter()
        .take(limit)
        .map(|p| {
            Value::Arr(vec![
                Value::Num(f64::from(p.left)),
                Value::Num(f64::from(p.right)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("k".into(), Value::Num(k as f64)),
        (
            "mode".into(),
            Value::Str(if nprobe.is_some() { "ann" } else { "exact" }.into()),
        ),
        ("total".into(), Value::Num(candidates.len() as f64)),
        ("pairs".into(), Value::Arr(echoed)),
    ];
    if let Some(n) = nprobe {
        fields.insert(2, ("nprobe".into(), Value::Num(n as f64)));
    }
    ok_response(fields)
}

fn handle_stats(engine: &Engine) -> Value {
    let stats = engine.stats();
    let snap = rlb_obs::snapshot();
    let ivf = engine.index().ivf();
    ok_response(vec![
        (
            "records".into(),
            Value::Obj(vec![
                ("left".into(), Value::Num(stats.left as f64)),
                ("right".into(), Value::Num(stats.right as f64)),
                ("pairs".into(), Value::Num(stats.pairs as f64)),
                ("vocab".into(), Value::Num(stats.vocab as f64)),
            ]),
        ),
        (
            "ann".into(),
            Value::Obj(vec![
                ("trained".into(), Value::Bool(ivf.trained())),
                ("nlists".into(), Value::Num(ivf.nlists() as f64)),
                ("trains".into(), Value::Num(ivf.trains() as f64)),
            ]),
        ),
        (
            "counters".into(),
            Value::Obj(
                snap.counters
                    .iter()
                    .map(|(n, v)| (n.clone(), Value::Num(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "histograms".into(),
            Value::Obj(
                snap.histograms
                    .iter()
                    .map(|(n, h)| (n.clone(), h.to_value()))
                    .collect(),
            ),
        ),
    ])
}

/// The `metrics` op: a live counter/histogram snapshot plus since-last-call
/// deltas. Counters report `{"total", "delta"}`; histograms report the
/// cumulative summary under `"cumulative"` and the window since the
/// previous `metrics` call under `"window"` (the first call's window is
/// all-time). Per-op rolling p50/p99 are therefore
/// `histograms["serve.<op>_us"].window.p50/p99`.
fn handle_metrics(engine: &Engine) -> Value {
    let snap = rlb_obs::snapshot();
    let prev = engine
        .swap_metrics_baseline(snap.clone())
        .unwrap_or_default();
    let counters: Vec<(String, Value)> = snap
        .counters
        .iter()
        .map(|(name, total)| {
            let delta = total.saturating_sub(prev.counter(name));
            (
                name.clone(),
                Value::Obj(vec![
                    ("total".into(), Value::Num(*total as f64)),
                    ("delta".into(), Value::Num(delta as f64)),
                ]),
            )
        })
        .collect();
    let histograms: Vec<(String, Value)> = snap
        .histograms
        .iter()
        .map(|(name, h)| {
            let window = match prev.histogram(name) {
                Some(p) => h.delta_since(p),
                None => h.clone(),
            };
            (
                name.clone(),
                Value::Obj(vec![
                    ("cumulative".into(), h.to_value()),
                    ("window".into(), window.to_value()),
                ]),
            )
        })
        .collect();
    ok_response(vec![
        ("counters".into(), Value::Obj(counters)),
        ("histograms".into(), Value::Obj(histograms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(script: &str) -> (Vec<Value>, ServeSummary) {
        let engine = RwLock::new(Engine::new("test"));
        let mut out = Vec::new();
        let summary = serve(
            &engine,
            std::io::BufReader::new(script.as_bytes()),
            &mut out,
            4096,
        )
        .unwrap();
        let responses = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Value::parse(l).expect("response parses"))
            .collect();
        (responses, summary)
    }

    fn ok(v: &Value) -> bool {
        v.get("ok").and_then(Value::as_bool) == Some(true)
    }

    #[test]
    fn full_session_over_the_wire() {
        let script = concat!(
            r#"{"op":"ingest","attributes":["name"],"left":[["acme widget"],["zen speaker"]],"#,
            r#""right":[["acme wdget"],["zen speakers"]],"pairs":[{"left":0,"right":0,"match":true,"split":"train"}]}"#,
            "\n",
            r#"{"op":"link","k":1}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
        );
        let (responses, summary) = drive(script);
        assert_eq!(responses.len(), 4);
        assert!(responses.iter().all(ok), "{responses:?}");
        assert_eq!(responses[0].get("left").and_then(Value::as_f64), Some(2.0));
        assert_eq!(responses[1].get("total").and_then(Value::as_f64), Some(2.0));
        let counters = responses[2].get("counters").expect("counters");
        assert!(counters.get("serve.ingest").is_some());
        let hists = responses[2].get("histograms").expect("histograms");
        assert!(hists.get("serve.request_us").is_some());
        assert_eq!(
            summary,
            ServeSummary {
                requests: 4,
                errors: 0,
                shut_down: true
            }
        );
    }

    #[test]
    fn malformed_and_unknown_requests_do_not_stop_the_loop() {
        let script = concat!(
            "{broken\n",
            r#"{"op":"teleport"}"#,
            "\n",
            r#"{"no_op":1}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
        );
        let (responses, summary) = drive(script);
        assert_eq!(responses.len(), 4);
        assert!(!ok(&responses[0]));
        assert!(responses[1]
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("unknown op"));
        assert!(!ok(&responses[2]));
        assert!(ok(&responses[3]));
        assert!(!summary.shut_down, "ended on EOF, not shutdown");
        assert_eq!(summary.errors, 3);
    }

    #[test]
    fn oversized_request_line_is_an_error_response() {
        let huge = format!("{{\"op\":\"ingest\",\"pad\":\"{}\"}}\n", "x".repeat(8192));
        let script = format!("{huge}{}\n", r#"{"op":"stats"}"#);
        let (responses, _) = drive(&script);
        assert_eq!(responses.len(), 2);
        assert!(responses[0]
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("4096-byte"));
        assert!(ok(&responses[1]), "stream stays aligned after oversize");
    }

    #[test]
    fn assess_over_the_wire_matches_direct_call() {
        let engine = RwLock::new(Engine::new("twin"));
        let ingest = Value::parse(concat!(
            r#"{"op":"ingest","left":[["acme widget pro"],["zen speaker ultra"],["kordia laptop"],["other thing"]],"#,
            r#""right":[["acme wdget pro"],["zen speakers"],["kordia laptops"],["unrelated junk"]],"#,
            r#""pairs":[{"left":0,"right":0,"match":true,"split":"train"},"#,
            r#"{"left":1,"right":1,"match":true,"split":"train"},"#,
            r#"{"left":2,"right":2,"match":true,"split":"val"},"#,
            r#"{"left":0,"right":3,"match":false,"split":"train"},"#,
            r#"{"left":3,"right":1,"match":false,"split":"test"},"#,
            r#"{"left":2,"right":3,"match":false,"split":"test"}]}"#
        ))
        .unwrap();
        let (resp, _) = handle_request(&engine, &ingest);
        assert!(ok(&resp), "{resp:?}");
        let (resp, _) = handle_request(&engine, &Value::parse(r#"{"op":"assess"}"#).unwrap());
        assert!(ok(&resp), "{resp:?}");
        let wire = resp.get("assessment").expect("assessment payload");
        let direct = engine.read().unwrap().assess().unwrap();
        assert_eq!(*wire, direct.to_json(), "wire assessment == direct");
    }

    #[test]
    fn link_with_nprobe_reports_ann_mode_and_matches_exact_when_exhaustive() {
        let engine = RwLock::new(Engine::new("ann"));
        let ingest = Value::parse(concat!(
            r#"{"op":"ingest","left":[["acme widget"],["zen speaker"]],"#,
            r#""right":[["acme wdget"],["zen speakers"],["junk"]]}"#
        ))
        .unwrap();
        let (resp, _) = handle_request(&engine, &ingest);
        assert!(ok(&resp), "{resp:?}");
        let (exact, _) = handle_request(&engine, &Value::parse(r#"{"op":"link","k":2}"#).unwrap());
        assert_eq!(exact.get("mode").and_then(Value::as_str), Some("exact"));
        assert!(exact.get("nprobe").is_none());
        // A tiny index is untrained, so any nprobe is exhaustive: the ANN
        // response must carry the same pairs as the exact one.
        let (ann, _) = handle_request(
            &engine,
            &Value::parse(r#"{"op":"link","k":2,"nprobe":4}"#).unwrap(),
        );
        assert!(ok(&ann), "{ann:?}");
        assert_eq!(ann.get("mode").and_then(Value::as_str), Some("ann"));
        assert_eq!(ann.get("nprobe").and_then(Value::as_f64), Some(4.0));
        assert_eq!(ann.get("pairs"), exact.get("pairs"));
        assert_eq!(ann.get("total"), exact.get("total"));
    }

    #[test]
    fn stats_reports_ann_state() {
        let (responses, _) = drive("{\"op\":\"stats\"}\n");
        let ann = responses[0].get("ann").expect("ann block");
        assert_eq!(ann.get("trained"), Some(&Value::Bool(false)));
        assert_eq!(ann.get("nlists").and_then(Value::as_f64), Some(0.0));
        assert_eq!(ann.get("trains").and_then(Value::as_f64), Some(0.0));
    }

    #[test]
    fn every_response_echoes_a_sequential_request_trace() {
        let script = concat!(
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"teleport"}"#,
            "\n",
            r#"{"no_op":1}"#,
            "\n",
        );
        let (responses, _) = drive(script);
        assert_eq!(responses.len(), 3);
        let run = rlb_obs::run_trace();
        let prefix = format!("{run}/");
        let mut seqs = Vec::new();
        for r in &responses {
            let trace = r
                .get("trace")
                .and_then(Value::as_str)
                .unwrap_or_else(|| panic!("response missing trace: {r:?}"));
            assert!(trace.starts_with(&prefix), "{trace} under run {run}");
            seqs.push(trace[prefix.len()..].parse::<u64>().unwrap());
        }
        // Consecutive requests in one session get consecutive sequence
        // numbers (other tests advance the global counter, so only the gap
        // between our own requests is pinned).
        assert_eq!(seqs[1], seqs[0] + 1, "{seqs:?}");
        assert_eq!(seqs[2], seqs[1] + 1, "{seqs:?}");
    }

    #[test]
    fn metrics_op_reports_totals_deltas_and_rolling_windows() {
        let engine = RwLock::new(Engine::new("metrics"));
        let metrics = Value::parse(r#"{"op":"metrics"}"#).unwrap();
        let (first, _) = handle_request(&engine, &metrics);
        assert!(ok(&first), "{first:?}");
        // Probe metrics no other test touches, so the window is exactly ours
        // even with concurrent tests hammering the global registry.
        rlb_obs::counter_add("test.metrics_probe", 2);
        rlb_obs::histogram_record("test.metrics_probe_us", 100);
        rlb_obs::histogram_record("test.metrics_probe_us", 300);
        let (second, _) = handle_request(&engine, &metrics);
        let probe = second
            .get("counters")
            .and_then(|c| c.get("test.metrics_probe"))
            .expect("probe counter");
        assert_eq!(probe.get("delta").and_then(Value::as_f64), Some(2.0));
        assert_eq!(probe.get("total").and_then(Value::as_f64), Some(2.0));
        let hist = second
            .get("histograms")
            .and_then(|h| h.get("test.metrics_probe_us"))
            .expect("probe histogram");
        let window = hist.get("window").expect("window summary");
        assert_eq!(window.get("count").and_then(Value::as_f64), Some(2.0));
        assert_eq!(window.get("sum").and_then(Value::as_f64), Some(400.0));
        assert!(window.get("p50").and_then(Value::as_f64).is_some());
        assert!(window.get("p99").and_then(Value::as_f64).is_some());
        let cumulative = hist.get("cumulative").expect("cumulative summary");
        assert_eq!(cumulative.get("count").and_then(Value::as_f64), Some(2.0));
        // The shared per-op metrics are present too (inexact totals: other
        // tests run concurrently).
        assert!(second
            .get("histograms")
            .and_then(|h| h.get("serve.request_us"))
            .is_some());
        // A third immediate call sees an empty probe window: zero delta,
        // null quantiles (never NaN, never fabricated zeros).
        let (third, _) = handle_request(&engine, &metrics);
        let probe = third
            .get("counters")
            .and_then(|c| c.get("test.metrics_probe"))
            .unwrap();
        assert_eq!(probe.get("delta").and_then(Value::as_f64), Some(0.0));
        let window = third
            .get("histograms")
            .and_then(|h| h.get("test.metrics_probe_us"))
            .and_then(|h| h.get("window"))
            .unwrap();
        assert_eq!(window.get("count").and_then(Value::as_f64), Some(0.0));
        assert_eq!(window.get("p99"), Some(&Value::Null));
    }

    #[test]
    fn bad_pair_fields_are_reported_with_location() {
        let (responses, _) = drive(concat!(
            r#"{"op":"ingest","left":[["a"]],"right":[["a"]],"pairs":[{"left":0,"right":0.5,"match":true}]}"#,
            "\n"
        ));
        let err = responses[0].get("error").and_then(Value::as_str).unwrap();
        assert!(err.contains("pairs[0].right"), "{err}");
    }
}
