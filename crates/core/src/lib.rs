//! `rlb-core` — the paper's primary contribution as a library.
//!
//! *A Critical Re-evaluation of Record Linkage Benchmarks for
//! Learning-Based Matching Algorithms* (ICDE 2024) proposes a principled
//! framework for judging whether an entity-resolution benchmark is actually
//! capable of differentiating learning-based matchers. This crate exposes
//! that framework end to end:
//!
//! - [`linearity`] — Algorithm 1, the *degree of linearity*
//!   (`F1max_CS`, `F1max_JS` and their thresholds);
//! - re-exported [`rlb_complexity`] — the 17 complexity measures over the
//!   `[CS, JS]` pair representation;
//! - [`practical`] — the a-posteriori aggregates **NLB** (non-linear boost)
//!   and **LBM** (learning-based margin) over a matcher roster;
//! - [`roster`] — the full matcher line-up of Section V-B (6 linear ESDE,
//!   Magellan × 4, ZeroER, 5 DL simulations × 2 epoch budgets);
//! - [`assessment`] — the combined four-measure verdict (a benchmark is
//!   challenging iff *no* measure marks it easy);
//! - [`builder`] — the Section-VI methodology: blocking + tuning + splitting
//!   a raw dataset pair into a new benchmark, with the Table-V bookkeeping.
//!
//! The companion crates supply everything underneath: synthetic dataset
//! stand-ins (`rlb-synth`), matchers (`rlb-matchers`), blocking
//! (`rlb-blocking`), and the ML/NN/text substrates.

pub mod assessment;
pub mod builder;
pub mod linearity;
pub mod practical;
pub mod roster;

pub use assessment::{assess, assess_from_scores, assess_with, Assessment, EasyFlags};
pub use builder::{build_benchmark, BuiltBenchmark};
pub use linearity::{
    degree_of_linearity, degree_of_linearity_from_scores, degree_of_linearity_sequential,
    degree_of_linearity_string, degree_of_linearity_with, LinearityReport,
};
pub use practical::{practical_measures, MatcherFamily, MatcherRun, PracticalMeasures};
pub use roster::{full_roster, full_roster_cached, run_roster, RosterConfig};

// Re-export the pieces users otherwise need from companion crates.
pub use rlb_complexity::{compute as complexity, ComplexityConfig, ComplexityReport};
pub use rlb_data::{DatasetStats, LabeledPair, MatchingTask, PairRef, Source};
pub use rlb_matchers::{evaluate, Matcher, TaskViewCache};
pub use rlb_synth::{established_profiles, generate_raw_pair, generate_task, raw_pair_profiles};
