//! A-posteriori measures: **non-linear boost** (NLB) and **learning-based
//! margin** (LBM) over a set of matcher results (Section III-C).

use rlb_util::json::{FromJson, JsonError, ToJson, Value};

/// Which of the paper's three families a matcher belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatcherFamily {
    /// Non-neural linear supervised (the six ESDE variants).
    Linear,
    /// Non-neural, non-linear ML (Magellan variants, ZeroER).
    NonLinearMl,
    /// Deep-learning matchers.
    DeepLearning,
}

impl ToJson for MatcherFamily {
    fn to_json(&self) -> Value {
        Value::Str(
            match self {
                MatcherFamily::Linear => "Linear",
                MatcherFamily::NonLinearMl => "NonLinearMl",
                MatcherFamily::DeepLearning => "DeepLearning",
            }
            .to_string(),
        )
    }
}

impl FromJson for MatcherFamily {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("Linear") => Ok(MatcherFamily::Linear),
            Some("NonLinearMl") => Ok(MatcherFamily::NonLinearMl),
            Some("DeepLearning") => Ok(MatcherFamily::DeepLearning),
            other => Err(JsonError::new(format!("unknown matcher family {other:?}"))),
        }
    }
}

/// One matcher's outcome on one benchmark. `f1 = None` renders as the
/// hyphen of Tables IV/VI (insufficient memory).
#[derive(Debug, Clone)]
pub struct MatcherRun {
    /// Display name, e.g. `"EMTransformer-R (40)"`.
    pub name: String,
    /// Family for the NLB aggregation.
    pub family: MatcherFamily,
    /// Test-set F1, or `None` when the matcher could not run.
    pub f1: Option<f64>,
}

rlb_util::impl_json!(MatcherRun { name, family, f1 });

/// The two aggregate practical measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PracticalMeasures {
    /// Best F1 among the linear matchers.
    pub best_linear: f64,
    /// Best F1 among the non-linear matchers (ML + DL).
    pub best_nonlinear: f64,
    /// Best F1 among every learning-based matcher.
    pub best_overall: f64,
    /// `NLB = max F1(non-linear) − max F1(linear)`.
    pub nlb: f64,
    /// `LBM = 1 − max F1(all)`.
    pub lbm: f64,
}

rlb_util::impl_json!(PracticalMeasures {
    best_linear,
    best_nonlinear,
    best_overall,
    nlb,
    lbm
});

/// Aggregates a roster of runs into NLB and LBM. Runs with `f1 = None` are
/// skipped (they contribute no maximum, as in the paper's tables).
pub fn practical_measures(runs: &[MatcherRun]) -> PracticalMeasures {
    let best = |pred: &dyn Fn(MatcherFamily) -> bool| {
        runs.iter()
            .filter(|r| pred(r.family))
            .filter_map(|r| r.f1)
            .fold(0.0f64, f64::max)
    };
    let best_linear = best(&|f| f == MatcherFamily::Linear);
    let best_nonlinear = best(&|f| f != MatcherFamily::Linear);
    let best_overall = best_linear.max(best_nonlinear);
    PracticalMeasures {
        best_linear,
        best_nonlinear,
        best_overall,
        nlb: best_nonlinear - best_linear,
        lbm: 1.0 - best_overall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, family: MatcherFamily, f1: Option<f64>) -> MatcherRun {
        MatcherRun {
            name: name.into(),
            family,
            f1,
        }
    }

    #[test]
    fn aggregates_maxima_per_family() {
        let runs = vec![
            run("SA-ESDE", MatcherFamily::Linear, Some(0.60)),
            run("SB-ESDE", MatcherFamily::Linear, Some(0.68)),
            run("Magellan-RF", MatcherFamily::NonLinearMl, Some(0.70)),
            run(
                "EMTransformer-R (40)",
                MatcherFamily::DeepLearning,
                Some(0.85),
            ),
        ];
        let m = practical_measures(&runs);
        assert_eq!(m.best_linear, 0.68);
        assert_eq!(m.best_nonlinear, 0.85);
        assert!((m.nlb - 0.17).abs() < 1e-12);
        assert!((m.lbm - 0.15).abs() < 1e-12);
    }

    #[test]
    fn trivial_benchmark_zeroes_both() {
        let runs = vec![
            run("SA-ESDE", MatcherFamily::Linear, Some(1.0)),
            run("DITTO (40)", MatcherFamily::DeepLearning, Some(1.0)),
        ];
        let m = practical_measures(&runs);
        assert_eq!(m.nlb, 0.0);
        assert_eq!(m.lbm, 0.0);
    }

    #[test]
    fn linear_winners_give_negative_nlb() {
        // The paper's Ds5: the best linear algorithm outperforms the best
        // non-linear one.
        let runs = vec![
            run("SAS-ESDE", MatcherFamily::Linear, Some(0.875)),
            run("Magellan-RF", MatcherFamily::NonLinearMl, Some(0.848)),
        ];
        let m = practical_measures(&runs);
        assert!(m.nlb < 0.0);
    }

    #[test]
    fn missing_runs_are_ignored() {
        let runs = vec![
            run("SA-ESDE", MatcherFamily::Linear, Some(0.5)),
            run("HierMatcher (10)", MatcherFamily::DeepLearning, None),
            run("GNEM (10)", MatcherFamily::DeepLearning, Some(0.7)),
        ];
        let m = practical_measures(&runs);
        assert_eq!(m.best_nonlinear, 0.7);
    }

    #[test]
    fn empty_roster_is_all_zero_margins() {
        let m = practical_measures(&[]);
        assert_eq!(m.best_overall, 0.0);
        assert_eq!(m.lbm, 1.0);
    }
}
