//! Algorithm 1: estimating the **degree of linearity**.
//!
//! Merge `T ∪ V ∪ C`, score every labelled pair with a schema-agnostic
//! token similarity (Cosine and Jaccard), sweep thresholds `0.01..=0.99`
//! (step 0.01), and report the maximum F1 each similarity reaches. High
//! values mean a trivial, linearly separable benchmark.

use rlb_data::MatchingTask;
use rlb_matchers::esde::sweep_threshold;
use rlb_matchers::features::{StringTaskViews, TaskViewCache};

/// Output of Algorithm 1 for both similarity measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearityReport {
    /// `F1max_CS` — best F1 achievable by thresholding the Cosine
    /// similarity.
    pub f1_cosine: f64,
    /// The threshold achieving `F1max_CS`.
    pub t_cosine: f64,
    /// `F1max_JS` — best F1 achievable by thresholding the Jaccard
    /// similarity.
    pub f1_jaccard: f64,
    /// The threshold achieving `F1max_JS`.
    pub t_jaccard: f64,
}

rlb_util::impl_json!(LinearityReport {
    f1_cosine,
    t_cosine,
    f1_jaccard,
    t_jaccard
});

impl LinearityReport {
    /// The larger of the two degrees — what the paper compares against its
    /// informal 0.8 "easy" bar.
    pub fn max_f1(&self) -> f64 {
        self.f1_cosine.max(self.f1_jaccard)
    }
}

/// Runs Algorithm 1 on a task (all three splits merged), building the
/// interned task views internally. Callers that also run the complexity
/// measures or a roster should build a [`TaskViewCache`] once and use
/// [`degree_of_linearity_with`] instead.
///
/// The per-pair CS/JS scoring — the dominant cost on large candidate sets —
/// runs on all cores via [`rlb_util::par`]; the output is byte-identical to
/// [`degree_of_linearity_sequential`] because pair order is preserved and
/// each pair's score is computed exactly the same way.
pub fn degree_of_linearity(task: &MatchingTask) -> LinearityReport {
    degree_of_linearity_with(task, &TaskViewCache::build(task))
}

/// Algorithm 1 over pre-built interned views — tokenization already paid,
/// only the integer set joins and the threshold sweep remain.
pub fn degree_of_linearity_with(task: &MatchingTask, views: &TaskViewCache) -> LinearityReport {
    let _span = rlb_obs::span!("linearity.sweep", "{}", task.name);
    let pairs: Vec<rlb_data::LabeledPair> = task.all_pairs().copied().collect();
    rlb_obs::counter_add("linearity.pairs", pairs.len() as u64);
    let scores = rlb_util::par::par_map(&pairs, |lp| views.cs_js(lp.pair));
    report_from_scores(&pairs, &scores)
}

/// Single-threaded Algorithm 1 — the baseline the in-tree timing harness
/// compares [`degree_of_linearity`] against. Produces byte-identical output.
pub fn degree_of_linearity_sequential(task: &MatchingTask) -> LinearityReport {
    let views = TaskViewCache::build(task);
    let pairs: Vec<rlb_data::LabeledPair> = task.all_pairs().copied().collect();
    let scores: Vec<[f64; 2]> = pairs.iter().map(|lp| views.cs_js(lp.pair)).collect();
    report_from_scores(&pairs, &scores)
}

/// Algorithm 1 over heap-allocated [`rlb_textsim::TokenSet`]s — the string
/// reference twin of [`degree_of_linearity`], kept for byte-identity
/// assertions and as the baseline side of the interned-vs-string timing
/// bench. Rebuilds its views on every call, exactly as the pipeline did
/// before interning.
pub fn degree_of_linearity_string(task: &MatchingTask) -> LinearityReport {
    let views = StringTaskViews::build(task);
    let pairs: Vec<rlb_data::LabeledPair> = task.all_pairs().copied().collect();
    let scores = rlb_util::par::par_map(&pairs, |lp| views.cs_js(lp.pair));
    report_from_scores(&pairs, &scores)
}

/// Algorithm 1 over already-computed `[CS, JS]` scores, one row per pair in
/// order. This is the entry the resident service's incremental assessment
/// cache uses: the per-pair similarities are interning-stable (they depend
/// only on each record's token set), so replaying cached rows through this
/// function is byte-identical to recomputing them.
pub fn degree_of_linearity_from_scores(
    pairs: &[rlb_data::LabeledPair],
    scores: &[[f64; 2]],
) -> LinearityReport {
    assert_eq!(pairs.len(), scores.len(), "one score row per pair");
    report_from_scores(pairs, scores)
}

fn report_from_scores(pairs: &[rlb_data::LabeledPair], scores: &[[f64; 2]]) -> LinearityReport {
    let mut cs = Vec::with_capacity(pairs.len());
    let mut js = Vec::with_capacity(pairs.len());
    let mut labels = Vec::with_capacity(pairs.len());
    for (lp, [c, j]) in pairs.iter().zip(scores) {
        cs.push(*c);
        js.push(*j);
        labels.push(lp.is_match);
    }
    let (f1_cosine, t_cosine) = sweep_threshold(&cs, &labels);
    let (f1_jaccard, t_jaccard) = sweep_threshold(&js, &labels);
    LinearityReport {
        f1_cosine,
        t_cosine,
        f1_jaccard,
        t_jaccard,
    }
}

/// Schema-aware degree of linearity — the variant the paper explored in
/// preliminary experiments (Section III: *"we also explored schema-aware
/// settings, applying the same measures to specific attribute values"*) and
/// reports in its extended version. Algorithm 1 is run per attribute; the
/// result is the best attribute's report together with its index.
///
/// The paper found no significant difference from the schema-agnostic
/// setting; the `schema_linearity_gap` integration test reproduces that
/// observation on the synthetic benchmarks.
pub fn degree_of_linearity_schema_aware(task: &MatchingTask) -> (usize, LinearityReport) {
    degree_of_linearity_schema_aware_with(task, &TaskViewCache::build(task))
}

/// Schema-aware Algorithm 1 over pre-built interned views.
pub fn degree_of_linearity_schema_aware_with(
    task: &MatchingTask,
    views: &TaskViewCache,
) -> (usize, LinearityReport) {
    let arity = task.left.arity().max(task.right.arity());
    let labels: Vec<bool> = task.all_pairs().map(|lp| lp.is_match).collect();
    let mut best: Option<(usize, LinearityReport)> = None;
    for a in 0..arity {
        let mut cs = Vec::with_capacity(labels.len());
        let mut js = Vec::with_capacity(labels.len());
        for lp in task.all_pairs() {
            let [c, j] = views.attr_cs_js(lp.pair, a);
            cs.push(c);
            js.push(j);
        }
        let (f1_cosine, t_cosine) = sweep_threshold(&cs, &labels);
        let (f1_jaccard, t_jaccard) = sweep_threshold(&js, &labels);
        let report = LinearityReport {
            f1_cosine,
            t_cosine,
            f1_jaccard,
            t_jaccard,
        };
        if best
            .as_ref()
            .is_none_or(|(_, b)| report.max_f1() > b.max_f1())
        {
            best = Some((a, report));
        }
    }
    best.expect("at least one attribute")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlb_synth::{BenchmarkProfile, DifficultyKnobs, Domain};

    fn task(noise: f64, hard: f64, seed: u64) -> MatchingTask {
        rlb_synth::generate_task(&BenchmarkProfile {
            id: "lin",
            stands_for: "test",
            domain: Domain::Product,
            left_size: 200,
            right_size: 250,
            n_matches: 120,
            labeled_pairs: 600,
            positive_fraction: 0.15,
            knobs: DifficultyKnobs {
                match_noise: noise,
                hard_negative_fraction: hard,
                anchor_attrs: 1,
                dirty: false,
                style_noise: 0.03,
                right_terse: false,
                base_missing: 0.2 * noise,
            },
            seed,
        })
    }

    #[test]
    fn easy_task_has_high_linearity() {
        let r = degree_of_linearity(&task(0.08, 0.1, 1));
        assert!(r.max_f1() > 0.9, "cs {} js {}", r.f1_cosine, r.f1_jaccard);
    }

    #[test]
    fn hard_task_has_low_linearity() {
        let easy = degree_of_linearity(&task(0.08, 0.1, 2));
        let hard = degree_of_linearity(&task(0.7, 0.6, 2));
        assert!(hard.max_f1() < easy.max_f1() - 0.15);
    }

    #[test]
    fn thresholds_are_in_sweep_range() {
        let r = degree_of_linearity(&task(0.4, 0.4, 3));
        for t in [r.t_cosine, r.t_jaccard] {
            assert!((0.01..=0.99).contains(&t), "{t}");
        }
    }

    #[test]
    fn cosine_never_below_jaccard_thresholds_scores() {
        // For any pair CS >= JS, so the optimal CS threshold is >= the JS
        // one in practice; the F1s are usually close on structured data.
        let r = degree_of_linearity(&task(0.3, 0.3, 4));
        assert!(r.f1_cosine >= r.f1_jaccard - 0.05);
    }

    #[test]
    fn deterministic() {
        let t = task(0.5, 0.5, 5);
        assert_eq!(degree_of_linearity(&t), degree_of_linearity(&t));
    }

    #[test]
    fn interned_report_equals_string_reference_bitwise() {
        for seed in [8, 9] {
            let t = task(0.35, 0.4, seed);
            let interned = degree_of_linearity(&t);
            let string = degree_of_linearity_string(&t);
            let cached = degree_of_linearity_with(&t, &TaskViewCache::build(&t));
            for (a, b) in [(interned, string), (interned, cached)] {
                assert_eq!(a.f1_cosine.to_bits(), b.f1_cosine.to_bits());
                assert_eq!(a.t_cosine.to_bits(), b.t_cosine.to_bits());
                assert_eq!(a.f1_jaccard.to_bits(), b.f1_jaccard.to_bits());
                assert_eq!(a.t_jaccard.to_bits(), b.t_jaccard.to_bits());
            }
        }
    }

    #[test]
    fn schema_aware_returns_valid_attribute_and_bounds() {
        let t = task(0.4, 0.4, 6);
        let (attr, report) = degree_of_linearity_schema_aware(&t);
        assert!(attr < t.left.arity());
        assert!((0.0..=1.0).contains(&report.max_f1()));
    }

    #[test]
    fn schema_aware_close_to_schema_agnostic() {
        // The paper's preliminary finding: no significant difference between
        // the two settings.
        let t = task(0.3, 0.3, 7);
        let agnostic = degree_of_linearity(&t).max_f1();
        let (_, aware) = degree_of_linearity_schema_aware(&t);
        assert!(
            (agnostic - aware.max_f1()).abs() < 0.2,
            "agnostic {agnostic} vs aware {}",
            aware.max_f1()
        );
    }
}
