//! The full matcher roster of Section V-B and the sweep runner behind
//! Tables IV and VI.

use crate::practical::{MatcherFamily, MatcherRun};
use rlb_data::MatchingTask;
use rlb_embed::contextual::Variant;
use rlb_matchers::deep::{
    is_insufficient_memory, DeepConfig, DeepMatcherSim, DittoSim, EmTransformerSim, GnemSim,
    HierMatcherSim,
};
use rlb_matchers::{
    evaluate, Esde, EsdeVariant, Magellan, MagellanModel, Matcher, TaskViewCache, ZeroEr,
};

/// Settings for the roster sweep.
#[derive(Debug, Clone, Copy)]
pub struct RosterConfig {
    /// The two epoch budgets every DL matcher is reported at (the paper
    /// uses the per-method default — 10 or 15 — and 40).
    pub dl_epochs: [usize; 2],
    /// Seed shared by the classical learners and the DL weight init.
    pub seed: u64,
}

impl Default for RosterConfig {
    fn default() -> Self {
        RosterConfig {
            dl_epochs: [15, 40],
            seed: 0x505E7,
        }
    }
}

/// Builds the complete matcher line-up:
/// 12 DL configurations (5 methods × 2 epoch budgets, GNEM/HierMatcher use
/// 10 instead of 15 as in the paper), Magellan × 4, ZeroER, 6 ESDE.
///
/// The ESDE variants build their own task views on `fit`; use
/// [`full_roster_cached`] to share one pre-built view cache across all six.
pub fn full_roster(cfg: &RosterConfig) -> Vec<(MatcherFamily, Box<dyn Matcher + Send>)> {
    roster_impl(cfg, None)
}

/// [`full_roster`] with the six ESDE variants sharing `views` — tokenization
/// happens once per task instead of once per variant. `views` must have been
/// built from the task the roster will run on.
pub fn full_roster_cached(
    cfg: &RosterConfig,
    views: &TaskViewCache,
) -> Vec<(MatcherFamily, Box<dyn Matcher + Send>)> {
    roster_impl(cfg, Some(views))
}

fn roster_impl(
    cfg: &RosterConfig,
    views: Option<&TaskViewCache>,
) -> Vec<(MatcherFamily, Box<dyn Matcher + Send>)> {
    let [e_short, e_long] = cfg.dl_epochs;
    let dc = |epochs: usize| DeepConfig {
        epochs,
        seed: cfg.seed,
        max_train: 6000,
    };
    let mut v: Vec<(MatcherFamily, Box<dyn Matcher + Send>)> = Vec::new();
    for epochs in [e_short, e_long] {
        v.push((
            MatcherFamily::DeepLearning,
            Box::new(DeepMatcherSim::new(dc(epochs))),
        ));
    }
    for epochs in [e_short, e_long] {
        v.push((
            MatcherFamily::DeepLearning,
            Box::new(DittoSim::new(dc(epochs))),
        ));
    }
    for variant in [Variant::Bert, Variant::Roberta] {
        for epochs in [e_short, e_long] {
            v.push((
                MatcherFamily::DeepLearning,
                Box::new(EmTransformerSim::new(variant, dc(epochs))),
            ));
        }
    }
    // GNEM and HierMatcher default to 10 epochs in their papers.
    for epochs in [e_short.min(10), e_long] {
        v.push((
            MatcherFamily::DeepLearning,
            Box::new(GnemSim::new(dc(epochs))),
        ));
    }
    for epochs in [e_short.min(10), e_long] {
        v.push((
            MatcherFamily::DeepLearning,
            Box::new(HierMatcherSim::new(dc(epochs))),
        ));
    }
    for model in MagellanModel::all() {
        v.push((
            MatcherFamily::NonLinearMl,
            Box::new(Magellan::new(model, cfg.seed)),
        ));
    }
    v.push((MatcherFamily::NonLinearMl, Box::new(ZeroEr::new())));
    for variant in EsdeVariant::all() {
        let esde = match views {
            Some(cache) => Esde::with_views(variant, cache.clone()),
            None => Esde::new(variant),
        };
        v.push((MatcherFamily::Linear, Box::new(esde)));
    }
    v
}

/// Runs the whole roster on one task. A matcher that fails with the
/// capacity sentinel yields `f1 = None` (the "-" of the paper's tables);
/// any other error propagates.
///
/// The 23 configurations are independent (each owns its matcher, the task is
/// shared read-only), so they run in parallel via [`rlb_util::par`]; results
/// come back in roster order. One [`TaskViewCache`] is built up front and
/// shared by the six ESDE variants (the q-gram views it carries are built
/// lazily, once, by whichever of SAQ/SBQ gets there first).
pub fn run_roster(task: &MatchingTask, cfg: &RosterConfig) -> rlb_util::Result<Vec<MatcherRun>> {
    let _span = rlb_obs::span!("roster.run", "{}", task.name);
    let views = TaskViewCache::build(task);
    let roster = full_roster_cached(cfg, &views);
    rlb_obs::counter_add("roster.configurations", roster.len() as u64);
    let results = rlb_util::par::par_map_vec(roster, |(family, mut matcher)| {
        let name = matcher.name();
        // Matchers run on par worker threads, so these spans are roots of
        // their own per-worker subtrees rather than children of roster.run.
        let _m = rlb_obs::span!("roster.matcher", "{name}");
        match evaluate(matcher.as_mut(), task) {
            Ok(metrics) => Ok(MatcherRun {
                name,
                family,
                f1: Some(metrics.f1),
            }),
            Err(e) if is_insufficient_memory(&e) => Ok(MatcherRun {
                name,
                family,
                f1: None,
            }),
            Err(e) => Err(e),
        }
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_the_paper_line_up() {
        let roster = full_roster(&RosterConfig::default());
        assert_eq!(roster.len(), 12 + 4 + 1 + 6);
        let dl = roster
            .iter()
            .filter(|(f, _)| *f == MatcherFamily::DeepLearning)
            .count();
        let ml = roster
            .iter()
            .filter(|(f, _)| *f == MatcherFamily::NonLinearMl)
            .count();
        let lin = roster
            .iter()
            .filter(|(f, _)| *f == MatcherFamily::Linear)
            .count();
        assert_eq!((dl, ml, lin), (12, 5, 6));
    }

    #[test]
    fn names_are_unique() {
        let roster = full_roster(&RosterConfig::default());
        let mut names: Vec<String> = roster.iter().map(|(_, m)| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 23, "duplicate matcher names");
    }

    #[test]
    fn gnem_and_hiermatcher_use_their_default_budgets() {
        let roster = full_roster(&RosterConfig::default());
        let names: Vec<String> = roster.iter().map(|(_, m)| m.name()).collect();
        assert!(names.contains(&"GNEM (10)".to_string()));
        assert!(names.contains(&"HierMatcher (10)".to_string()));
        assert!(names.contains(&"EMTransformer-R (15)".to_string()));
    }
}
