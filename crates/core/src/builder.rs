//! Section VI: the methodology for creating new benchmarks.
//!
//! Four steps: (1) apply a state-of-the-art blocker to a raw dataset pair
//! with complete ground truth; (2) fine-tune it for a recall floor while
//! maximizing precision; (3) randomly split the candidates 3:1:1; (4)
//! re-assess the difficulty with all four measures (the caller runs
//! [`crate::assess`] on the result).

use rlb_blocking::{tune, BlockerChoice, TunerConfig};
use rlb_data::{split_pairs, LabeledPair, MatchingTask, SplitRatio};
use rlb_synth::RawDatasetPair;
use rlb_util::hash::FxHashSet;
use rlb_util::Prng;

/// A benchmark produced by the methodology, plus the Table-V bookkeeping.
#[derive(Debug, Clone)]
pub struct BuiltBenchmark {
    /// The labelled matching task (candidates labelled from ground truth,
    /// split 3:1:1).
    pub task: MatchingTask,
    /// The tuned blocker configuration and its averaged PC/PQ.
    pub blocking: BlockerChoice,
    /// Total ground-truth matches `|M|` of the raw pair.
    pub total_matches: usize,
}

/// Runs steps 1–3 of the methodology on a raw dataset pair.
pub fn build_benchmark(
    raw: &RawDatasetPair,
    tuner: &TunerConfig,
    split_seed: u64,
) -> BuiltBenchmark {
    let blocking = tune(&raw.left, &raw.right, &raw.matches, tuner);
    let truth: FxHashSet<_> = raw.matches.iter().copied().collect();
    let labeled: Vec<LabeledPair> = blocking
        .candidates
        .iter()
        .map(|&pair| LabeledPair {
            pair,
            is_match: truth.contains(&pair),
        })
        .collect();
    let mut rng = Prng::seed_from_u64(split_seed);
    let (train, val, test) = split_pairs(labeled, SplitRatio::PAPER, &mut rng);
    let task = MatchingTask {
        name: raw.name.clone(),
        left: raw.left.clone(),
        right: raw.right.clone(),
        train,
        val,
        test,
    };
    BuiltBenchmark {
        task,
        blocking,
        total_matches: raw.matches.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlb_data::DatasetStats;
    use rlb_synth::{generate_raw_pair, Domain, RawPairProfile};

    fn raw(noise: f64, seed: u64) -> RawDatasetPair {
        generate_raw_pair(&RawPairProfile {
            id: "built",
            left_name: "L",
            right_name: "R",
            domain: Domain::Product,
            left_size: 200,
            right_size: 260,
            n_matches: 130,
            match_noise: noise,
            anchor_attrs: 1,
            style_noise: 0.03,
            missing_boost: 0.0,
            match_scramble: 0.0,
            seed,
        })
    }

    fn tuner() -> TunerConfig {
        TunerConfig {
            reps: 1,
            k_max: 16,
            ..Default::default()
        }
    }

    #[test]
    fn built_benchmark_is_valid_and_split_3_1_1() {
        let raw = raw(0.2, 1);
        let built = build_benchmark(&raw, &tuner(), 42);
        assert_eq!(built.task.validate(), Ok(()));
        let n = built.task.total_pairs();
        assert_eq!(n, built.blocking.candidates.len());
        let tr = built.task.train.len() as f64 / n as f64;
        assert!((tr - 0.6).abs() < 0.02, "train fraction {tr}");
        assert_eq!(built.total_matches, 130);
    }

    #[test]
    fn labels_agree_with_ground_truth() {
        let raw = raw(0.2, 2);
        let built = build_benchmark(&raw, &tuner(), 42);
        let truth: std::collections::BTreeSet<_> = raw.matches.iter().collect();
        for lp in built.task.all_pairs() {
            assert_eq!(lp.is_match, truth.contains(&lp.pair));
        }
    }

    #[test]
    fn imbalance_tracks_blocking_pq() {
        let raw = raw(0.2, 3);
        let built = build_benchmark(&raw, &tuner(), 42);
        let stats = DatasetStats::of(&built.task);
        assert!(
            (stats.imbalance_ratio - built.blocking.metrics.pq).abs() < 0.02,
            "IR {} vs PQ {}",
            stats.imbalance_ratio,
            built.blocking.metrics.pq
        );
    }

    #[test]
    fn noisier_raw_pairs_give_harder_benchmarks() {
        let easy = build_benchmark(&raw(0.08, 4), &tuner(), 42);
        let hard = build_benchmark(&raw(0.65, 4), &tuner(), 42);
        let le = crate::degree_of_linearity(&easy.task);
        let lh = crate::degree_of_linearity(&hard.task);
        assert!(
            le.max_f1() > lh.max_f1(),
            "easy {} should exceed hard {}",
            le.max_f1(),
            lh.max_f1()
        );
    }

    #[test]
    fn deterministic() {
        let raw = raw(0.3, 5);
        let a = build_benchmark(&raw, &tuner(), 42);
        let b = build_benchmark(&raw, &tuner(), 42);
        assert_eq!(a.task.train, b.task.train);
        assert_eq!(a.blocking.k, b.blocking.k);
    }
}
