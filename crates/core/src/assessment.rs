//! The combined four-measure benchmark assessment.
//!
//! Section V's conclusion: *"a benchmark dataset is challenging for entity
//! matching only if it is marked easy by none of our measures"*. The four
//! easy-markers are:
//!
//! 1. degree of linearity ≥ 0.8 (either similarity) — linearly separable;
//! 2. mean complexity < 0.4 — simple patterns suffice;
//! 3. NLB < 5% — non-linear models add nothing;
//! 4. LBM < 5% — learning-based matchers are already near-perfect.

use crate::linearity::{degree_of_linearity_from_scores, LinearityReport};
use crate::practical::{practical_measures, MatcherRun, PracticalMeasures};
use rlb_complexity::{ComplexityConfig, ComplexityReport};
use rlb_data::MatchingTask;
use rlb_matchers::features::TaskViewCache;
use rlb_util::Result;

/// Thresholds used by the verdict (the paper's Section V / Figure 3
/// discussion).
pub const LINEARITY_EASY: f64 = 0.8;
/// Mean-complexity bar below which a task counts as easy.
pub const COMPLEXITY_EASY: f64 = 0.4;
/// NLB / LBM bar (5%).
pub const MARGIN_EASY: f64 = 0.05;

/// Which individual measures mark the benchmark easy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EasyFlags {
    /// Degree of linearity ≥ 0.8.
    pub by_linearity: bool,
    /// Mean complexity < 0.4.
    pub by_complexity: bool,
    /// NLB < 5%.
    pub by_nlb: bool,
    /// LBM < 5%.
    pub by_lbm: bool,
}

impl EasyFlags {
    /// The paper's verdict: challenging iff no measure marks it easy.
    pub fn challenging(&self) -> bool {
        !(self.by_linearity || self.by_complexity || self.by_nlb || self.by_lbm)
    }
}

rlb_util::impl_json!(EasyFlags {
    by_linearity,
    by_complexity,
    by_nlb,
    by_lbm
});

/// Full assessment of one benchmark.
#[derive(Debug, Clone)]
pub struct Assessment {
    /// Benchmark name.
    pub name: String,
    /// Algorithm-1 output.
    pub linearity: LinearityReport,
    /// The 17 complexity measures.
    pub complexity: ComplexityReport,
    /// NLB / LBM (absent when no matcher roster was run).
    pub practical: Option<PracticalMeasures>,
    /// Per-measure easy flags.
    pub flags: EasyFlags,
}

impl Assessment {
    /// The combined verdict.
    pub fn challenging(&self) -> bool {
        self.flags.challenging()
    }
}

rlb_util::impl_json!(Assessment {
    name,
    linearity,
    complexity,
    practical,
    flags
});

/// Computes the a-priori measures and, given matcher runs, the a-posteriori
/// ones, then applies the verdict.
///
/// Pass `runs = &[]` to assess a-priori only (the practical flags then do
/// not mark the benchmark easy — matching the paper's requirement that
/// *all four* measures are consulted before a final verdict, this yields a
/// provisional assessment with `practical = None`).
pub fn assess(task: &MatchingTask, runs: &[MatcherRun]) -> Result<Assessment> {
    assess_with(task, runs, &TaskViewCache::build(task))
}

/// [`assess`] over a pre-built view cache. The cache is built exactly once
/// per task per pipeline run: `degree_of_linearity` and the `[CS, JS]`
/// complexity feature extraction both read from it, so each record is
/// tokenized a single time.
pub fn assess_with(
    task: &MatchingTask,
    runs: &[MatcherRun],
    views: &TaskViewCache,
) -> Result<Assessment> {
    let _span = rlb_obs::span!("assess.task", "{}", task.name);
    let pairs: Vec<rlb_data::LabeledPair> = task.all_pairs().copied().collect();
    let scores = {
        let _sweep = rlb_obs::span!("linearity.sweep", "{}", task.name);
        rlb_obs::counter_add("linearity.pairs", pairs.len() as u64);
        rlb_util::par::par_map(&pairs, |lp| views.cs_js(lp.pair))
    };
    assess_from_scores(task, runs, &pairs, &scores)
}

/// The assessment over already-computed `[CS, JS]` similarity rows, one per
/// labelled pair in `pairs` order. Both the linearity sweep and the
/// complexity features read from `scores`, so the per-pair similarities are
/// computed exactly once — and a caller holding cached rows (the resident
/// service's incremental assessment cache) skips the similarity pass
/// entirely while staying byte-identical to [`assess_with`], which now
/// routes through this function.
pub fn assess_from_scores(
    task: &MatchingTask,
    runs: &[MatcherRun],
    pairs: &[rlb_data::LabeledPair],
    scores: &[[f64; 2]],
) -> Result<Assessment> {
    let linearity = degree_of_linearity_from_scores(pairs, scores);
    let labels: Vec<bool> = pairs.iter().map(|lp| lp.is_match).collect();
    // `from_env` honors the `RLB_COMPLEXITY_*` knobs, so a deployment can
    // switch the assess path to the error-bounded landmark estimator
    // (RLB_COMPLEXITY_SAMPLE) without a rebuild; defaults stay exact.
    let complexity = rlb_complexity::compute_cs_js(scores, &labels, &ComplexityConfig::from_env())?;
    let practical = (!runs.is_empty()).then(|| practical_measures(runs));
    let flags = EasyFlags {
        by_linearity: linearity.max_f1() >= LINEARITY_EASY,
        by_complexity: complexity.mean() < COMPLEXITY_EASY,
        by_nlb: practical.is_some_and(|p| p.nlb < MARGIN_EASY),
        by_lbm: practical.is_some_and(|p| p.lbm < MARGIN_EASY),
    };
    Ok(Assessment {
        name: task.name.clone(),
        linearity,
        complexity,
        practical,
        flags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::practical::MatcherFamily;
    use rlb_synth::{BenchmarkProfile, DifficultyKnobs, Domain};

    fn task(noise: f64, hard: f64, seed: u64) -> MatchingTask {
        rlb_synth::generate_task(&BenchmarkProfile {
            id: "assess",
            stands_for: "test",
            domain: Domain::Product,
            left_size: 200,
            right_size: 250,
            n_matches: 120,
            labeled_pairs: 600,
            positive_fraction: 0.15,
            knobs: DifficultyKnobs {
                match_noise: noise,
                hard_negative_fraction: hard,
                anchor_attrs: 1,
                dirty: false,
                style_noise: 0.03,
                right_terse: false,
                base_missing: 0.2 * noise,
            },
            seed,
        })
    }

    fn runs(linear: f64, nonlinear: f64) -> Vec<MatcherRun> {
        vec![
            MatcherRun {
                name: "lin".into(),
                family: MatcherFamily::Linear,
                f1: Some(linear),
            },
            MatcherRun {
                name: "dl".into(),
                family: MatcherFamily::DeepLearning,
                f1: Some(nonlinear),
            },
        ]
    }

    #[test]
    fn easy_benchmark_is_flagged_easy() {
        let t = task(0.05, 0.05, 1);
        let a = assess(&t, &runs(0.97, 0.99)).unwrap();
        assert!(a.flags.by_linearity || a.flags.by_complexity || a.flags.by_lbm);
        assert!(!a.challenging());
    }

    #[test]
    fn hard_benchmark_with_margins_is_challenging() {
        let t = task(0.7, 0.6, 2);
        let a = assess(&t, &runs(0.55, 0.75)).unwrap();
        assert!(!a.flags.by_nlb, "NLB 0.20 is not easy");
        assert!(!a.flags.by_lbm, "LBM 0.25 is not easy");
        assert!(a.challenging(), "flags: {:?}", a.flags);
    }

    #[test]
    fn high_nlb_low_lbm_is_still_easy() {
        // The paper's Ds1–Ds3 pattern: non-linear boost exists but matchers
        // are near-perfect.
        let t = task(0.7, 0.6, 3);
        let a = assess(&t, &runs(0.80, 0.99)).unwrap();
        assert!(a.flags.by_lbm);
        assert!(!a.challenging());
    }

    #[test]
    fn apriori_only_assessment_has_no_practical() {
        let t = task(0.4, 0.4, 4);
        let a = assess(&t, &[]).unwrap();
        assert!(a.practical.is_none());
        assert!(!a.flags.by_nlb && !a.flags.by_lbm);
    }

    #[test]
    fn assessment_serializes_roundtrip() {
        let t = task(0.4, 0.4, 5);
        let a = assess(&t, &[]).unwrap();
        let json = rlb_util::json::to_string(&a);
        assert!(json.contains("\"lsc\""));
        let back: Assessment = rlb_util::json::from_str(&json).unwrap();
        // The in-tree writer emits shortest round-tripping floats, so the
        // measures come back bit-exact.
        for ((n1, v1), (n2, v2)) in back.complexity.values().iter().zip(a.complexity.values()) {
            assert_eq!(*n1, n2);
            assert_eq!(v1.to_bits(), v2.to_bits(), "{n1}: {v1} vs {v2}");
        }
        assert_eq!(back.flags, a.flags);
        assert!(back.practical.is_none());
    }
}
