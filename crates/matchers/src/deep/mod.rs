//! Deep-learning matcher simulations (Section IV-A).
//!
//! Each of the five methods is recreated at the level the paper's analysis
//! operates on: a neural classifier over pair representations whose *input
//! encoding* realizes the method's cell in the Table-II taxonomy. The
//! substitution table in DESIGN.md spells out why this preserves the
//! experiments; in short, the paper treats every DL matcher as a black box
//! scored by F1, and what differentiates the boxes across datasets is
//! which representation they consume:
//!
//! | matcher | embedding | schema | context |
//! |---|---|---|---|
//! | [`DeepMatcherSim`] | static subword | homogeneous (per attribute) | local |
//! | [`EmTransformerSim`] | dynamic (B/R) | heterogeneous (concatenated) | local |
//! | [`DittoSim`] | dynamic + knowledge/augment/summarize | heterogeneous | local |
//! | [`GnemSim`] | dynamic | homogeneous | **global** (pair graph) |
//! | [`HierMatcherSim`] | static + cross-attribute alignment | heterogeneous | local |
//!
//! All train on `rlb-nn` with mini-batch Adam, class-weighted BCE, and
//! validation-based epoch selection — the paper's protocol (it patches the
//! real EMTransformer to do exactly this). The epoch budget is exposed
//! because it is the paper's headline hyperparameter (each method is
//! reported at two budgets in Tables IV and VI).
//!
//! Like their real counterparts on a 24 GB GPU, the simulations have
//! capacity limits; oversized tasks fail with an "insufficient memory"
//! error, which the experiment harness renders as the hyphen of Tables IV
//! and VI.

mod deepmatcher;
mod ditto;
mod emtransformer;
mod gnem;
mod hiermatcher;

pub use deepmatcher::DeepMatcherSim;
pub use ditto::DittoSim;
pub use emtransformer::EmTransformerSim;
pub use gnem::GnemSim;
pub use hiermatcher::HierMatcherSim;

use rlb_data::{LabeledPair, MatchingTask, Record};
use rlb_nn::{Mlp, TrainConfig};
use rlb_textsim::tfidf::TfIdfModel;
use rlb_util::{Error, Prng, Result};

/// Hyperparameters shared by all deep matcher simulations.
#[derive(Debug, Clone, Copy)]
pub struct DeepConfig {
    /// Training epochs (the paper's per-method budgets: 10/15/40).
    pub epochs: usize,
    /// Seed for weight init, batching and subsampling.
    pub seed: u64,
    /// Cap on the number of training pairs actually used for gradient
    /// updates (stratified subsample beyond it) — the CPU stand-in for a
    /// GPU-sized batch budget.
    pub max_train: usize,
}

impl DeepConfig {
    /// Budget of `epochs` with defaults otherwise.
    pub fn with_epochs(epochs: usize) -> Self {
        DeepConfig {
            epochs,
            seed: 0xD33D,
            max_train: 6000,
        }
    }
}

/// Token-level cross-alignment features — the stand-in for the cross
/// -attention a fine-tuned transformer performs *between* the two input
/// sequences. A bi-encoder record vector alone cannot tell a corrupted
/// duplicate from a same-line sibling (both differ from the record in a few
/// tokens); what cross-attention adds is visibility into *which* tokens
/// align and how strongly, weighted by salience.
///
/// Per record we keep the IDF-top `ALIGN_TOKENS` contextual token vectors;
/// per pair we compute the token-to-token cosine matrix and summarize its
/// row/column maxima into six statistics.
#[derive(Debug, Default)]
pub(crate) struct CrossAlign {
    left: Vec<Vec<(Vec<f32>, f32)>>,
    right: Vec<Vec<(Vec<f32>, f32)>>,
}

/// Tokens kept per record for alignment (IDF-top).
const ALIGN_TOKENS: usize = 16;

impl CrossAlign {
    /// Number of features [`CrossAlign::features`] produces.
    pub(crate) const WIDTH: usize = 6;

    pub(crate) fn prepare(
        embed_token: &dyn Fn(&str) -> Vec<f32>,
        task: &MatchingTask,
    ) -> CrossAlign {
        let mut idf = TfIdfModel::new();
        for r in task.left.records.iter().chain(task.right.records.iter()) {
            let toks = r.tokens();
            idf.add_document(toks.iter().map(|t| t.as_str()));
        }
        let build = |records: &[Record]| {
            records
                .iter()
                .map(|r| {
                    let mut weighted: Vec<(String, f32)> = r
                        .tokens()
                        .into_iter()
                        .map(|t| {
                            let w = idf.idf(&t) as f32;
                            (t, w)
                        })
                        .collect();
                    weighted
                        .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
                    weighted.dedup_by(|a, b| a.0 == b.0);
                    weighted.truncate(ALIGN_TOKENS);
                    weighted
                        .into_iter()
                        .map(|(t, w)| (embed_token(&t), w))
                        .collect()
                })
                .collect()
        };
        CrossAlign {
            left: build(&task.left.records),
            right: build(&task.right.records),
        }
    }

    /// Six alignment statistics for one pair: weighted mean row/column max
    /// similarity, fraction of strongly-aligned tokens per side, minimum
    /// row/column max.
    pub(crate) fn features(&self, p: rlb_data::PairRef) -> [f32; Self::WIDTH] {
        let l = &self.left[p.left as usize];
        let r = &self.right[p.right as usize];
        if l.is_empty() || r.is_empty() {
            return [0.0; Self::WIDTH];
        }
        let mut row_max = vec![0.0f32; l.len()];
        let mut col_max = vec![0.0f32; r.len()];
        for (i, (u, _)) in l.iter().enumerate() {
            for (j, (v, _)) in r.iter().enumerate() {
                let c = rlb_util::linalg::cosine_f32(u, v).max(0.0);
                if c > row_max[i] {
                    row_max[i] = c;
                }
                if c > col_max[j] {
                    col_max[j] = c;
                }
            }
        }
        let wstats = |maxes: &[f32], toks: &[(Vec<f32>, f32)]| {
            let mut num = 0.0f32;
            let mut den = 0.0f32;
            let mut strong = 0usize;
            let mut min = 1.0f32;
            for (m, (_, w)) in maxes.iter().zip(toks) {
                num += m * w;
                den += w;
                if *m > 0.85 {
                    strong += 1;
                }
                if *m < min {
                    min = *m;
                }
            }
            (num / den.max(1e-6), strong as f32 / maxes.len() as f32, min)
        };
        let (wl, sl, ml) = wstats(&row_max, l);
        let (wr, sr, mr) = wstats(&col_max, r);
        [wl, wr, sl, sr, ml, mr]
    }
}

/// Error returned when a simulated matcher exceeds its capacity limit —
/// rendered as "-" (insufficient memory) in the result tables.
pub fn insufficient_memory() -> Error {
    Error::Numeric("insufficient memory".into())
}

/// Whether an error is the capacity sentinel.
pub fn is_insufficient_memory(e: &Error) -> bool {
    matches!(e, Error::Numeric(msg) if msg == "insufficient memory")
}

/// Stratified subsample of labelled pairs up to `cap`, preserving the
/// positive fraction (at least one positive and one negative retained when
/// available).
pub(crate) fn subsample_train(
    pairs: &[LabeledPair],
    cap: usize,
    rng: &mut Prng,
) -> Vec<LabeledPair> {
    if pairs.len() <= cap {
        return pairs.to_vec();
    }
    let pos: Vec<&LabeledPair> = pairs.iter().filter(|p| p.is_match).collect();
    let neg: Vec<&LabeledPair> = pairs.iter().filter(|p| !p.is_match).collect();
    let pos_take = (((pos.len() as f64 / pairs.len() as f64) * cap as f64).round() as usize)
        .clamp(1.min(pos.len()), pos.len());
    let neg_take = (cap - pos_take).min(neg.len());
    let mut out = Vec::with_capacity(pos_take + neg_take);
    for i in rng.sample_indices(pos.len(), pos_take) {
        out.push(*pos[i]);
    }
    for i in rng.sample_indices(neg.len(), neg_take) {
        out.push(*neg[i]);
    }
    rng.shuffle(&mut out);
    out
}

/// Shared fit path: featurize train/val, train an MLP with validation-based
/// epoch selection.
pub(crate) fn train_classifier<F>(
    task: &MatchingTask,
    cfg: &DeepConfig,
    mut net: Mlp,
    featurize: F,
) -> Result<Mlp>
where
    F: Fn(rlb_data::PairRef) -> Vec<f32>,
{
    if task.train.is_empty() {
        return Err(Error::EmptyInput("deep matcher training set"));
    }
    let mut rng = Prng::seed_from_u64(cfg.seed);
    let train = subsample_train(&task.train, cfg.max_train, &mut rng);
    let train_x: Vec<Vec<f32>> = train.iter().map(|lp| featurize(lp.pair)).collect();
    let train_y: Vec<bool> = train.iter().map(|lp| lp.is_match).collect();
    let val = subsample_train(&task.val, cfg.max_train / 2, &mut rng);
    let val_x: Vec<Vec<f32>> = val.iter().map(|lp| featurize(lp.pair)).collect();
    let val_y: Vec<bool> = val.iter().map(|lp| lp.is_match).collect();
    let tc = TrainConfig {
        epochs: cfg.epochs,
        learning_rate: 1e-2,
        ..Default::default()
    };
    net.train(&train_x, &train_y, &val_x, &val_y, &tc, cfg.seed ^ 0x7EA1)?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlb_data::LabeledPair;

    #[test]
    fn subsample_preserves_class_balance() {
        let pairs: Vec<LabeledPair> = (0..1000)
            .map(|i| LabeledPair::new(i, i, i % 10 == 0))
            .collect();
        let mut rng = Prng::seed_from_u64(1);
        let sub = subsample_train(&pairs, 200, &mut rng);
        assert_eq!(sub.len(), 200);
        let pos = sub.iter().filter(|p| p.is_match).count();
        assert!((15..=25).contains(&pos), "positives {pos}");
    }

    #[test]
    fn subsample_below_cap_is_identity() {
        let pairs: Vec<LabeledPair> = (0..50)
            .map(|i| LabeledPair::new(i, i, i % 2 == 0))
            .collect();
        let mut rng = Prng::seed_from_u64(2);
        assert_eq!(subsample_train(&pairs, 100, &mut rng), pairs);
    }

    #[test]
    fn memory_sentinel_roundtrip() {
        let e = insufficient_memory();
        assert!(is_insufficient_memory(&e));
        assert!(!is_insufficient_memory(&Error::EmptyInput("x")));
    }
}
