//! HierMatcher simulation — hierarchical matching with **cross-attribute
//! token alignment** (Section IV-A, method 5): every token of one record is
//! aligned to its best-matching token *anywhere* in the other record
//! (heterogeneous), token contributions are weighted by importance (IDF),
//! alignment scores are aggregated per attribute, and an entity-level
//! comparison vector feeds the classifier.

use super::{train_classifier, DeepConfig};
use crate::Matcher;
use rlb_data::{MatchingTask, PairRef, Record};
use rlb_embed::hashed::HashedEmbedder;
use rlb_nn::Mlp;
use rlb_textsim::tfidf::TfIdfModel;
use rlb_util::Result;

/// Token-embedding dimensionality.
const DIM: usize = 64;
/// Capacity cap on `Σ pairs × tokens²` work — the token-level alignment is
/// what makes the real HierMatcher run out of memory on the larger
/// benchmarks (the many "-" entries in Table IV).
const MAX_ALIGNMENT_WORK: u64 = 8_000_000;

struct TokenizedRecord {
    /// Per attribute: `(token embedding, idf weight)`.
    attrs: Vec<Vec<(Vec<f32>, f32)>>,
}

/// HierMatcher: representation → token matching → attribute matching →
/// entity matching.
pub struct HierMatcherSim {
    cfg: DeepConfig,
    embedder: HashedEmbedder,
    left: Vec<TokenizedRecord>,
    right: Vec<TokenizedRecord>,
    arity: usize,
    net: Option<Mlp>,
}

impl HierMatcherSim {
    /// Unfitted matcher.
    pub fn new(cfg: DeepConfig) -> Self {
        HierMatcherSim {
            cfg,
            embedder: HashedEmbedder::new(DIM, 0x41E2),
            left: Vec::new(),
            right: Vec::new(),
            arity: 0,
            net: None,
        }
    }

    fn tokenize_records(&self, records: &[Record], idf: &TfIdfModel) -> Vec<TokenizedRecord> {
        records
            .iter()
            .map(|r| {
                let attrs = (0..self.arity)
                    .map(|a| {
                        rlb_textsim::tokens(r.value(a))
                            .into_iter()
                            .map(|t| {
                                let w = idf.idf(&t) as f32;
                                (self.embedder.token(&t), w)
                            })
                            .collect()
                    })
                    .collect();
                TokenizedRecord { attrs }
            })
            .collect()
    }

    /// Best alignment of each token of `from` against any token of `to`
    /// (cross-attribute), importance-weighted.
    fn directional_attr_score(from: &[(Vec<f32>, f32)], to: &TokenizedRecord) -> f32 {
        if from.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f32;
        let mut weight = 0.0f32;
        for (v, w) in from {
            let mut best = 0.0f32;
            for attr in &to.attrs {
                for (u, _) in attr {
                    let c = rlb_util::linalg::cosine_f32(v, u);
                    if c > best {
                        best = c;
                    }
                }
            }
            total += w * best;
            weight += w;
        }
        if weight > 0.0 {
            total / weight
        } else {
            0.0
        }
    }

    /// Entity comparison vector: per left attribute the aligned score
    /// against the whole right record, per right attribute the reverse, plus
    /// global min/mean aggregates.
    fn features(&self, p: PairRef) -> Vec<f32> {
        let l = &self.left[p.left as usize];
        let r = &self.right[p.right as usize];
        let mut out = Vec::with_capacity(4 * self.arity + 2);
        // Only attributes that are present contribute to the aggregates;
        // the presence flags let the classifier discount absent ones.
        let mut all = Vec::with_capacity(2 * self.arity);
        for a in 0..self.arity {
            let present = !l.attrs[a].is_empty();
            let s = Self::directional_attr_score(&l.attrs[a], r);
            out.push(s);
            out.push(f32::from(present as u8));
            if present {
                all.push(s);
            }
        }
        for a in 0..self.arity {
            let present = !r.attrs[a].is_empty();
            let s = Self::directional_attr_score(&r.attrs[a], l);
            out.push(s);
            out.push(f32::from(present as u8));
            if present {
                all.push(s);
            }
        }
        let mean = all.iter().sum::<f32>() / all.len().max(1) as f32;
        let min = all.iter().copied().fold(1.0f32, f32::min);
        out.push(mean);
        out.push(min);
        out
    }

    fn alignment_work(task: &MatchingTask) -> u64 {
        // Estimate: pairs × (avg tokens per record)².
        let avg_tokens = |records: &[Record]| {
            let total: usize = records.iter().map(|r| r.tokens().len()).sum();
            (total / records.len().max(1)).max(1) as u64
        };
        let t = avg_tokens(&task.left.records).max(avg_tokens(&task.right.records));
        task.total_pairs() as u64 * t * t
    }
}

impl Matcher for HierMatcherSim {
    fn name(&self) -> String {
        format!("HierMatcher ({})", self.cfg.epochs)
    }

    fn fit(&mut self, task: &MatchingTask) -> Result<()> {
        if Self::alignment_work(task) > MAX_ALIGNMENT_WORK {
            return Err(super::insufficient_memory());
        }
        self.arity = task.left.arity().max(task.right.arity());
        let mut idf = TfIdfModel::new();
        for r in task.left.records.iter().chain(task.right.records.iter()) {
            let toks = r.tokens();
            idf.add_document(toks.iter().map(|t| t.as_str()));
        }
        self.left = self.tokenize_records(&task.left.records, &idf);
        self.right = self.tokenize_records(&task.right.records, &idf);
        let dim = 4 * self.arity + 2;
        let net = Mlp::new(dim, &[24], self.cfg.seed ^ 0x41E3);
        let fitted = train_classifier(task, &self.cfg, net, |p| self.features(p))?;
        self.net = Some(fitted);
        Ok(())
    }

    fn predict(&mut self, _task: &MatchingTask, pairs: &[PairRef]) -> Vec<bool> {
        let feats: Vec<Vec<f32>> = pairs.iter().map(|&p| self.features(p)).collect();
        let net = self
            .net
            .as_mut()
            .expect("HierMatcherSim::predict before fit");
        net.predict_batch(&feats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use crate::testtask::small;

    #[test]
    fn learns_easy_benchmark() {
        let task = small(0.15, 81);
        let mut m = HierMatcherSim::new(DeepConfig::with_epochs(10));
        let f1 = evaluate(&mut m, &task).unwrap().f1;
        assert!(f1 > 0.7, "HierMatcher sim F1 {f1:.3}");
    }

    #[test]
    fn cross_attribute_alignment_survives_migration() {
        // A token moved into a different attribute still aligns.
        use rlb_data::Source;
        let mut left = Source::new("L", vec!["a".into(), "b".into()]);
        let mut right = Source::new("R", vec!["a".into(), "b".into()]);
        left.push(vec!["kelora brimstone".into(), "kordia".into()]);
        right.push(vec!["kelora".into(), "brimstone kordia".into()]); // migrated
        right.push(vec!["voltan meridian".into(), "acme".into()]); // unrelated
        let task = MatchingTask {
            name: "mig".into(),
            left,
            right,
            train: vec![],
            val: vec![],
            test: vec![],
        };
        let mut m = HierMatcherSim::new(DeepConfig::with_epochs(1));
        m.arity = 2;
        let idf = TfIdfModel::new();
        m.left = m.tokenize_records(&task.left.records, &idf);
        m.right = m.tokenize_records(&task.right.records, &idf);
        let same = m.features(PairRef::new(0, 0));
        let diff = m.features(PairRef::new(0, 1));
        assert_eq!(same.len(), 4 * 2 + 2);
        let mean_same = same[same.len() - 2];
        let mean_diff = diff[diff.len() - 2];
        assert!(
            mean_same > 0.95,
            "migrated duplicate should align nearly perfectly: {mean_same}"
        );
        assert!(mean_same > mean_diff + 0.2);
    }

    #[test]
    fn oversized_task_reports_insufficient_memory() {
        let mut task = small(0.3, 82);
        let filler: Vec<rlb_data::LabeledPair> = (0..2_000_000)
            .map(|i| rlb_data::LabeledPair::new((i % 150) as u32, (i % 180) as u32, false))
            .collect();
        task.train.extend(filler);
        let mut m = HierMatcherSim::new(DeepConfig::with_epochs(10));
        let err = m.fit(&task).unwrap_err();
        assert!(super::super::is_insufficient_memory(&err));
    }

    #[test]
    fn name_carries_epochs() {
        assert_eq!(
            HierMatcherSim::new(DeepConfig::with_epochs(40)).name(),
            "HierMatcher (40)"
        );
    }
}
