//! EMTransformer simulation — dynamic embeddings applied out-of-the-box to
//! the concatenated attribute values (heterogeneous), local decisions
//! (Section IV-A, method 2). Two checkpoint variants, B and R.

use super::{train_classifier, CrossAlign, DeepConfig};
use crate::Matcher;
use rlb_data::{MatchingTask, PairRef, Record};
use rlb_embed::contextual::{ContextualEncoder, Variant};
use rlb_nn::Mlp;
use rlb_util::Result;

/// EMTransformer with a BERT- or RoBERTa-style encoder.
pub struct EmTransformerSim {
    cfg: DeepConfig,
    variant: Variant,
    encoder: ContextualEncoder,
    left: Vec<Vec<f32>>,
    right: Vec<Vec<f32>>,
    align: CrossAlign,
    net: Option<Mlp>,
}

impl EmTransformerSim {
    /// Unfitted matcher for the given checkpoint variant.
    pub fn new(variant: Variant, cfg: DeepConfig) -> Self {
        EmTransformerSim {
            cfg,
            variant,
            encoder: ContextualEncoder::new(variant),
            left: Vec::new(),
            right: Vec::new(),
            align: CrossAlign::default(),
            net: None,
        }
    }

    fn encode_records(&self, records: &[Record]) -> Vec<Vec<f32>> {
        // Heterogeneous: all attribute values concatenated into one
        // sequence, exactly the "[CLS] seq1 [SEP] seq2 [SEP]" preparation.
        records
            .iter()
            .map(|r| self.encoder.encode_text(&r.full_text()))
            .collect()
    }

    /// Standard sequence-pair interaction features:
    /// `[|u − v| ; u ⊙ v ; cos ; euclid-sim ; wasserstein-sim]` — the
    /// element-wise comparison vector plus the scalar similarities a
    /// fine-tuned CLS head effectively computes.
    pub(crate) fn pair_features(u: &[f32], v: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(2 * u.len() + 3);
        for (a, b) in u.iter().zip(v) {
            out.push((a - b).abs());
        }
        for (a, b) in u.iter().zip(v) {
            out.push(a * b);
        }
        out.push(rlb_embed::cosine_sim(u, v) as f32);
        out.push(rlb_embed::euclidean_sim(u, v) as f32);
        out.push(rlb_embed::wasserstein_sim(u, v) as f32);
        out
    }

    fn features(&self, p: PairRef) -> Vec<f32> {
        let mut out =
            Self::pair_features(&self.left[p.left as usize], &self.right[p.right as usize]);
        out.extend_from_slice(&self.align.features(p));
        out
    }
}

impl Matcher for EmTransformerSim {
    fn name(&self) -> String {
        let tag = match self.variant {
            Variant::Bert => "B",
            Variant::Roberta => "R",
        };
        format!("EMTransformer-{tag} ({})", self.cfg.epochs)
    }

    fn fit(&mut self, task: &MatchingTask) -> Result<()> {
        self.left = self.encode_records(&task.left.records);
        self.right = self.encode_records(&task.right.records);
        let base = rlb_embed::HashedEmbedder::new(self.encoder.dim(), 0xC405);
        self.align = CrossAlign::prepare(&|t| base.token(t), task);
        let dim = 2 * self.encoder.dim() + 3 + CrossAlign::WIDTH;
        let net = Mlp::new(dim, &[64], self.cfg.seed ^ self.encoder.dim() as u64);
        let fitted = train_classifier(task, &self.cfg, net, |p| self.features(p))?;
        self.net = Some(fitted);
        Ok(())
    }

    fn predict(&mut self, _task: &MatchingTask, pairs: &[PairRef]) -> Vec<bool> {
        let feats: Vec<Vec<f32>> = pairs.iter().map(|&p| self.features(p)).collect();
        let net = self
            .net
            .as_mut()
            .expect("EmTransformerSim::predict before fit");
        net.predict_batch(&feats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use crate::testtask::small;

    #[test]
    fn learns_easy_benchmark() {
        let task = small(0.15, 51);
        let mut m = EmTransformerSim::new(Variant::Roberta, DeepConfig::with_epochs(15));
        let f1 = evaluate(&mut m, &task).unwrap().f1;
        assert!(f1 > 0.75, "EMTransformer sim F1 {f1:.3}");
    }

    #[test]
    fn names_distinguish_variants_and_epochs() {
        assert_eq!(
            EmTransformerSim::new(Variant::Bert, DeepConfig::with_epochs(15)).name(),
            "EMTransformer-B (15)"
        );
        assert_eq!(
            EmTransformerSim::new(Variant::Roberta, DeepConfig::with_epochs(40)).name(),
            "EMTransformer-R (40)"
        );
    }

    #[test]
    fn pair_features_have_expected_structure() {
        let u = vec![1.0f32, 0.0];
        let v = vec![0.0f32, 1.0];
        let f = EmTransformerSim::pair_features(&u, &v);
        assert_eq!(&f[..4], &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(f.len(), 7);
    }

    #[test]
    fn robust_to_dirty_attribute_migration() {
        // Heterogeneous concatenation makes the encoder insensitive to which
        // attribute a value sits in.
        use rlb_data::Source;
        let enc = ContextualEncoder::new(Variant::Bert);
        let mut s = Source::new("S", vec!["title".into(), "brand".into()]);
        s.push(vec!["acme widget".into(), "kordia".into()]);
        s.push(vec!["acme widget kordia".into(), String::new()]);
        let a = enc.encode_text(&s.record(0).full_text());
        let b = enc.encode_text(&s.record(1).full_text());
        let sim = rlb_util::linalg::cosine_f32(&a, &b);
        assert!(
            sim > 0.999,
            "migration should not change the encoding: {sim}"
        );
    }
}
