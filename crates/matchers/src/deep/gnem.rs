//! GNEM simulation — the one *global* method of the taxonomy
//! (Section IV-A, method 3): candidate pairs are nodes of a graph, pairs
//! sharing a record are connected, and match likelihoods are propagated
//! through a gated graph-convolution step before the final decision.
//!
//! The simulation keeps that structure: a local scorer (dynamic encoder +
//! MLP) produces per-pair logits; a second-stage network then consumes each
//! pair's logit *together with the competing logits of pairs sharing its
//! records* — which in clean-clean ER is exactly the signal a one-to-one
//! assumption exposes.

use super::{train_classifier, CrossAlign, DeepConfig};
use crate::Matcher;
use rlb_data::{MatchingTask, PairRef, Record};
use rlb_embed::contextual::{ContextualEncoder, Variant};
use rlb_nn::{Mlp, TrainConfig};
use rlb_util::hash::FxHashMap;
use rlb_util::{Error, Prng, Result};

/// Capacity cap: the pair graph is materialized over every candidate pair,
/// so very large tasks exhaust the simulated memory budget (GNEM shows "-"
/// on several datasets in Tables IV and VI for the same reason).
const MAX_GRAPH_PAIRS: usize = 60_000;

/// GNEM: local scorer + one propagation step over the pair graph.
pub struct GnemSim {
    cfg: DeepConfig,
    encoder: ContextualEncoder,
    left: Vec<Vec<f32>>,
    right: Vec<Vec<f32>>,
    align: CrossAlign,
    local: Option<Mlp>,
    global: Option<Mlp>,
    /// Competitor-logit statistics per pair, rebuilt in fit over all
    /// candidate pairs of the task.
    competitor_stats: FxHashMap<PairRef, [f32; 3]>,
}

impl GnemSim {
    /// Unfitted matcher.
    pub fn new(cfg: DeepConfig) -> Self {
        GnemSim {
            cfg,
            encoder: ContextualEncoder::new(Variant::Bert),
            left: Vec::new(),
            right: Vec::new(),
            align: CrossAlign::default(),
            local: None,
            global: None,
            competitor_stats: FxHashMap::default(),
        }
    }

    fn encode_records(&self, records: &[Record]) -> Vec<Vec<f32>> {
        records
            .iter()
            .map(|r| self.encoder.encode_text(&r.full_text()))
            .collect()
    }

    fn local_features(&self, p: PairRef) -> Vec<f32> {
        let mut out = super::emtransformer::EmTransformerSim::pair_features(
            &self.left[p.left as usize],
            &self.right[p.right as usize],
        );
        out.extend_from_slice(&self.align.features(p));
        out
    }

    /// Builds the pair graph over every candidate pair and computes, per
    /// pair: its own logit, the max and mean logit among pairs sharing its
    /// left or right record (the "gated interaction" signal).
    fn build_graph(&mut self, task: &MatchingTask) {
        let local = self.local.as_mut().expect("local scorer first");
        let all: Vec<PairRef> = task.all_pairs().map(|lp| lp.pair).collect();
        let logits: Vec<f32> = all
            .iter()
            .map(|&p| {
                let mut f = super::emtransformer::EmTransformerSim::pair_features(
                    &self.left[p.left as usize],
                    &self.right[p.right as usize],
                );
                f.extend_from_slice(&self.align.features(p));
                local.logit(&f)
            })
            .collect();
        let mut by_left: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        let mut by_right: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        for (i, p) in all.iter().enumerate() {
            by_left.entry(p.left).or_default().push(i);
            by_right.entry(p.right).or_default().push(i);
        }
        self.competitor_stats.clear();
        for (i, &p) in all.iter().enumerate() {
            let mut max_c = f32::NEG_INFINITY;
            let mut sum_c = 0.0f32;
            let mut n_c = 0usize;
            for &j in by_left[&p.left].iter().chain(by_right[&p.right].iter()) {
                if j == i {
                    continue;
                }
                max_c = max_c.max(logits[j]);
                sum_c += logits[j];
                n_c += 1;
            }
            let stats = if n_c == 0 {
                [logits[i], 0.0, 0.0]
            } else {
                [logits[i], max_c, sum_c / n_c as f32]
            };
            self.competitor_stats.insert(p, stats);
        }
    }

    fn global_features(&self, p: PairRef) -> Vec<f32> {
        let [own, max_c, mean_c] = self
            .competitor_stats
            .get(&p)
            .copied()
            .unwrap_or([0.0, 0.0, 0.0]);
        // Squash logits so the second stage trains on a bounded scale.
        let s = |x: f32| 1.0 / (1.0 + (-x).exp());
        vec![s(own), s(max_c), s(mean_c), s(own) - s(max_c)]
    }
}

impl Matcher for GnemSim {
    fn name(&self) -> String {
        format!("GNEM ({})", self.cfg.epochs)
    }

    fn fit(&mut self, task: &MatchingTask) -> Result<()> {
        if task.total_pairs() > MAX_GRAPH_PAIRS {
            return Err(super::insufficient_memory());
        }
        if task.train.is_empty() {
            return Err(Error::EmptyInput("GNEM training set"));
        }
        self.left = self.encode_records(&task.left.records);
        self.right = self.encode_records(&task.right.records);
        let base = rlb_embed::HashedEmbedder::new(self.encoder.dim(), 0x63E10);
        self.align = CrossAlign::prepare(&|t| base.token(t), task);
        // Stage 1: local scorer.
        let dim = 2 * self.encoder.dim() + 3 + CrossAlign::WIDTH;
        let local = Mlp::new(dim, &[64], self.cfg.seed ^ 0x63E1);
        let fitted = train_classifier(task, &self.cfg, local, |p| self.local_features(p))?;
        self.local = Some(fitted);
        // Stage 2: graph interaction over all candidate pairs.
        self.build_graph(task);
        let mut global = Mlp::new(4, &[8], self.cfg.seed ^ 0x6E42);
        let mut rng = Prng::seed_from_u64(self.cfg.seed);
        let train = super::subsample_train(&task.train, self.cfg.max_train, &mut rng);
        let gx: Vec<Vec<f32>> = train
            .iter()
            .map(|lp| self.global_features(lp.pair))
            .collect();
        let gy: Vec<bool> = train.iter().map(|lp| lp.is_match).collect();
        let vx: Vec<Vec<f32>> = task
            .val
            .iter()
            .map(|lp| self.global_features(lp.pair))
            .collect();
        let vy: Vec<bool> = task.val.iter().map(|lp| lp.is_match).collect();
        let tc = TrainConfig {
            epochs: self.cfg.epochs.min(20),
            ..Default::default()
        };
        global.train(&gx, &gy, &vx, &vy, &tc, self.cfg.seed ^ 0x6E43)?;
        self.global = Some(global);
        Ok(())
    }

    fn predict(&mut self, _task: &MatchingTask, pairs: &[PairRef]) -> Vec<bool> {
        let feats: Vec<Vec<f32>> = pairs.iter().map(|&p| self.global_features(p)).collect();
        let net = self.global.as_mut().expect("GnemSim::predict before fit");
        net.predict_batch(&feats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use crate::testtask::small;

    #[test]
    fn learns_easy_benchmark() {
        let task = small(0.15, 71);
        let mut m = GnemSim::new(DeepConfig::with_epochs(10));
        let f1 = evaluate(&mut m, &task).unwrap().f1;
        assert!(f1 > 0.7, "GNEM sim F1 {f1:.3}");
    }

    #[test]
    fn oversized_task_reports_insufficient_memory() {
        let mut task = small(0.3, 72);
        // Inflate the candidate count past the cap without building data.
        let filler: Vec<rlb_data::LabeledPair> = (0..MAX_GRAPH_PAIRS)
            .map(|i| rlb_data::LabeledPair::new((i % 150) as u32, (i % 180) as u32, false))
            .collect();
        task.train.extend(filler);
        let mut m = GnemSim::new(DeepConfig::with_epochs(10));
        let err = m.fit(&task).unwrap_err();
        assert!(super::super::is_insufficient_memory(&err));
    }

    #[test]
    fn global_stage_uses_competitor_signal() {
        let task = small(0.2, 73);
        let mut m = GnemSim::new(DeepConfig::with_epochs(10));
        m.fit(&task).unwrap();
        // Competitor stats exist for every candidate pair of the task.
        assert_eq!(m.competitor_stats.len(), task.total_pairs());
        let f = m.global_features(task.test[0].pair);
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn name_carries_epochs() {
        assert_eq!(
            GnemSim::new(DeepConfig::with_epochs(10)).name(),
            "GNEM (10)"
        );
    }
}
