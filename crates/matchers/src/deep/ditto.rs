//! DITTO simulation — EMTransformer's dynamic encoding extended with the
//! three DITTO optimizations (Section IV-A, method 4):
//!
//! 1. **domain knowledge injection**: explicit features for recognized
//!    entity types — numeric tokens (years, prices) and identifier-shaped
//!    tokens (model codes) — the stand-in for the NER + regex module;
//! 2. **long-value summarization**: records longer than the token budget
//!    are reduced to their highest-TF-IDF non-stopword tokens before
//!    encoding;
//! 3. **data augmentation**: each training pair contributes extra jittered
//!    copies, the feature-space analogue of DITTO's augmentation operators.

use super::{emtransformer::EmTransformerSim as Emt, subsample_train, CrossAlign, DeepConfig};
use crate::Matcher;
use rlb_data::{MatchingTask, PairRef, Record};
use rlb_embed::contextual::{ContextualEncoder, Variant};
use rlb_nn::{Mlp, TrainConfig};
use rlb_textsim::tfidf::{TfIdfModel, STOPWORDS};
use rlb_textsim::TokenSet;
use rlb_util::{Error, Prng, Result};

/// Token budget beyond which summarization kicks in.
const SUMMARY_BUDGET: usize = 32;
/// Augmented copies per training pair.
const AUGMENT_COPIES: usize = 1;
/// Feature jitter magnitude for augmentation.
const AUGMENT_NOISE: f32 = 0.02;

/// DITTO: summarize → encode (RoBERTa) → interaction features + injected
/// domain knowledge → MLP, with augmentation.
pub struct DittoSim {
    cfg: DeepConfig,
    encoder: ContextualEncoder,
    left: Vec<Vec<f32>>,
    right: Vec<Vec<f32>>,
    /// Cached knowledge tokens (numeric + code-shaped) per record.
    left_knowledge: Vec<(TokenSet, TokenSet)>,
    right_knowledge: Vec<(TokenSet, TokenSet)>,
    /// Feed the domain-knowledge features to the classifier (off by
    /// default, matching the paper's DITTO configuration; on = ablation of
    /// the knowledge module).
    pub use_knowledge: bool,
    align: CrossAlign,
    net: Option<Mlp>,
}

impl DittoSim {
    /// Unfitted matcher.
    pub fn new(cfg: DeepConfig) -> Self {
        DittoSim {
            cfg,
            encoder: ContextualEncoder::new(Variant::Roberta),
            left: Vec::new(),
            right: Vec::new(),
            left_knowledge: Vec::new(),
            right_knowledge: Vec::new(),
            use_knowledge: false,
            align: CrossAlign::default(),
            net: None,
        }
    }

    /// Numeric tokens and identifier-shaped tokens (letters+digits mix) of a
    /// record — the domain-knowledge module's output.
    fn knowledge(record: &Record) -> (TokenSet, TokenSet) {
        let toks = record.tokens();
        let numeric = TokenSet::new(
            toks.iter()
                .filter(|t| t.chars().all(|c| c.is_ascii_digit()))
                .cloned(),
        );
        let codes = TokenSet::new(
            toks.iter()
                .filter(|t| {
                    t.chars().any(|c| c.is_ascii_digit()) && t.chars().any(|c| c.is_alphabetic())
                })
                .cloned(),
        );
        (numeric, codes)
    }

    fn encode_records(&self, records: &[Record], idf: &TfIdfModel) -> Vec<Vec<f32>> {
        records
            .iter()
            .map(|r| {
                let toks = r.tokens();
                if toks.len() > SUMMARY_BUDGET {
                    let summary = idf.summarize(&toks, SUMMARY_BUDGET, STOPWORDS);
                    self.encoder.encode_tokens(&summary)
                } else {
                    self.encoder.encode_tokens(&toks)
                }
            })
            .collect()
    }

    fn features(&self, p: PairRef) -> Vec<f32> {
        // NOTE: the knowledge features are computed but *not* fed to the
        // classifier by default — the paper could not run DITTO with its
        // external-knowledge module ("DITTO did not employ any external
        // knowledge", Section V-B), and its Table-IV runs underperform for
        // exactly that reason. `use_knowledge` restores them for ablations.
        let (li, ri) = (p.left as usize, p.right as usize);
        let mut out = Emt::pair_features(&self.left[li], &self.right[ri]);
        out.extend_from_slice(&self.align.features(p));
        if self.use_knowledge {
            let (ln, lc) = &self.left_knowledge[li];
            let (rn, rc) = &self.right_knowledge[ri];
            out.push(rlb_textsim::sets::jaccard(ln, rn) as f32);
            out.push(rlb_textsim::sets::jaccard(lc, rc) as f32);
            out.push(f32::from((!ln.is_empty() && !rn.is_empty()) as u8));
            out.push(f32::from((!lc.is_empty() && !rc.is_empty()) as u8));
        }
        out
    }
}

impl Matcher for DittoSim {
    fn name(&self) -> String {
        format!("DITTO ({})", self.cfg.epochs)
    }

    fn fit(&mut self, task: &MatchingTask) -> Result<()> {
        if task.train.is_empty() {
            return Err(Error::EmptyInput("DITTO training set"));
        }
        let mut idf = TfIdfModel::new();
        for r in task.left.records.iter().chain(task.right.records.iter()) {
            let toks = r.tokens();
            idf.add_document(toks.iter().map(|t| t.as_str()));
        }
        self.left = self.encode_records(&task.left.records, &idf);
        self.right = self.encode_records(&task.right.records, &idf);
        self.left_knowledge = task.left.records.iter().map(Self::knowledge).collect();
        self.right_knowledge = task.right.records.iter().map(Self::knowledge).collect();
        let base = rlb_embed::HashedEmbedder::new(self.encoder.dim(), 0xD1770);
        self.align = CrossAlign::prepare(&|t| base.token(t), task);

        let dim =
            2 * self.encoder.dim() + 3 + CrossAlign::WIDTH + if self.use_knowledge { 4 } else { 0 };
        let mut net = Mlp::new(dim, &[64], self.cfg.seed ^ 0xD177);

        // Training with feature-space augmentation.
        let mut rng = Prng::seed_from_u64(self.cfg.seed);
        let base = subsample_train(&task.train, self.cfg.max_train, &mut rng);
        let mut train_x: Vec<Vec<f32>> = Vec::with_capacity(base.len() * (1 + AUGMENT_COPIES));
        let mut train_y: Vec<bool> = Vec::with_capacity(train_x.capacity());
        for lp in &base {
            let f = self.features(lp.pair);
            for copy in 0..=AUGMENT_COPIES {
                if copy == 0 {
                    train_x.push(f.clone());
                } else {
                    let jittered: Vec<f32> = f
                        .iter()
                        .map(|&v| v + (rng.f32() * 2.0 - 1.0) * AUGMENT_NOISE)
                        .collect();
                    train_x.push(jittered);
                }
                train_y.push(lp.is_match);
            }
        }
        let val = subsample_train(&task.val, self.cfg.max_train / 2, &mut rng);
        let val_x: Vec<Vec<f32>> = val.iter().map(|lp| self.features(lp.pair)).collect();
        let val_y: Vec<bool> = val.iter().map(|lp| lp.is_match).collect();
        let tc = TrainConfig {
            epochs: self.cfg.epochs,
            ..Default::default()
        };
        net.train(
            &train_x,
            &train_y,
            &val_x,
            &val_y,
            &tc,
            self.cfg.seed ^ 0xA06,
        )?;
        self.net = Some(net);
        Ok(())
    }

    fn predict(&mut self, _task: &MatchingTask, pairs: &[PairRef]) -> Vec<bool> {
        let feats: Vec<Vec<f32>> = pairs.iter().map(|&p| self.features(p)).collect();
        let net = self.net.as_mut().expect("DittoSim::predict before fit");
        net.predict_batch(&feats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use crate::testtask::small;

    #[test]
    fn learns_easy_benchmark() {
        let task = small(0.15, 61);
        let mut m = DittoSim::new(DeepConfig::with_epochs(15));
        let f1 = evaluate(&mut m, &task).unwrap().f1;
        assert!(f1 > 0.7, "DITTO sim F1 {f1:.3}");
    }

    #[test]
    fn knowledge_extracts_numbers_and_codes() {
        use rlb_data::Record;
        let r = Record::new(0, vec!["acme XK-4821 model 2021".into()]);
        let (numeric, codes) = DittoSim::knowledge(&r);
        assert!(numeric.contains("2021"));
        assert!(numeric.contains("4821"));
        assert!(codes.is_empty() || !codes.contains("acme"));
    }

    #[test]
    fn feature_width_includes_knowledge() {
        let task = small(0.3, 62);
        let mut m = DittoSim::new(DeepConfig::with_epochs(1));
        m.fit(&task).unwrap();
        let f = m.features(task.test[0].pair);
        assert_eq!(f.len(), 2 * 128 + 3 + 6);
        let mut k = DittoSim::new(DeepConfig::with_epochs(1));
        k.use_knowledge = true;
        k.fit(&task).unwrap();
        assert_eq!(k.features(task.test[0].pair).len(), 2 * 128 + 3 + 6 + 4);
    }

    #[test]
    fn name_carries_epochs() {
        assert_eq!(
            DittoSim::new(DeepConfig::with_epochs(40)).name(),
            "DITTO (40)"
        );
    }
}
