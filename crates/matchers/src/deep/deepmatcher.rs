//! DeepMatcher simulation — static embeddings, homogeneous (per-attribute)
//! similarity vectors, local decisions, HighwayNet classifier
//! (Section IV-A, method 1).

use super::{train_classifier, DeepConfig};
use crate::Matcher;
use rlb_data::{MatchingTask, PairRef, Record};
use rlb_embed::{cosine_sim, euclidean_sim, wasserstein_sim, HashedEmbedder};
use rlb_nn::Mlp;
use rlb_util::Result;

/// Static embedding dimensionality (fastText stand-in).
const DIM: usize = 64;

/// DeepMatcher: attribute embedding → attribute similarity vector →
/// Highway classifier.
pub struct DeepMatcherSim {
    cfg: DeepConfig,
    embedder: HashedEmbedder,
    /// Per-record, per-attribute pooled embeddings.
    left: Vec<Vec<Vec<f32>>>,
    right: Vec<Vec<Vec<f32>>>,
    arity: usize,
    net: Option<Mlp>,
}

impl DeepMatcherSim {
    /// Unfitted matcher.
    pub fn new(cfg: DeepConfig) -> Self {
        DeepMatcherSim {
            cfg,
            embedder: HashedEmbedder::new(DIM, 0xFA57),
            left: Vec::new(),
            right: Vec::new(),
            arity: 0,
            net: None,
        }
    }

    fn embed_records(&self, records: &[Record]) -> Vec<Vec<Vec<f32>>> {
        records
            .iter()
            .map(|r| {
                (0..self.arity)
                    .map(|a| self.embedder.text(r.value(a)))
                    .collect()
            })
            .collect()
    }

    /// The homogeneous attribute-similarity vector: per aligned attribute,
    /// `[cosine, euclidean-sim, wasserstein-sim, both-present flag]`.
    fn features(&self, p: PairRef) -> Vec<f32> {
        let l = &self.left[p.left as usize];
        let r = &self.right[p.right as usize];
        let mut out = Vec::with_capacity(4 * self.arity);
        for a in 0..self.arity {
            let (u, v) = (&l[a], &r[a]);
            let lu = rlb_util::linalg::norm_f32(u);
            let lv = rlb_util::linalg::norm_f32(v);
            if lu == 0.0 || lv == 0.0 {
                out.extend_from_slice(&[0.0, 0.0, 0.0, 0.0]);
                continue;
            }
            out.push(cosine_sim(u, v) as f32);
            out.push(euclidean_sim(u, v) as f32);
            out.push(wasserstein_sim(u, v) as f32);
            out.push(1.0);
        }
        out
    }
}

impl Matcher for DeepMatcherSim {
    fn name(&self) -> String {
        format!("DeepMatcher ({})", self.cfg.epochs)
    }

    fn fit(&mut self, task: &MatchingTask) -> Result<()> {
        self.arity = task.left.arity().max(task.right.arity());
        self.left = self.embed_records(&task.left.records);
        self.right = self.embed_records(&task.right.records);
        let net = Mlp::highway_net(4 * self.arity, 24, self.cfg.seed);
        let fitted = train_classifier(task, &self.cfg, net, |p| self.features(p))?;
        self.net = Some(fitted);
        Ok(())
    }

    fn predict(&mut self, _task: &MatchingTask, pairs: &[PairRef]) -> Vec<bool> {
        let feats: Vec<Vec<f32>> = pairs.iter().map(|&p| self.features(p)).collect();
        let net = self
            .net
            .as_mut()
            .expect("DeepMatcherSim::predict before fit");
        net.predict_batch(&feats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use crate::testtask::small;

    #[test]
    fn learns_easy_benchmark() {
        let task = small(0.15, 41);
        let mut m = DeepMatcherSim::new(DeepConfig::with_epochs(15));
        let f1 = evaluate(&mut m, &task).unwrap().f1;
        assert!(f1 > 0.75, "DeepMatcher sim F1 {f1:.3}");
    }

    #[test]
    fn name_carries_epochs() {
        assert_eq!(
            DeepMatcherSim::new(DeepConfig::with_epochs(40)).name(),
            "DeepMatcher (40)"
        );
    }

    #[test]
    fn feature_width_is_4_per_attribute() {
        let task = small(0.3, 42);
        let mut m = DeepMatcherSim::new(DeepConfig::with_epochs(1));
        m.fit(&task).unwrap();
        assert_eq!(m.features(task.test[0].pair).len(), 4 * task.left.arity());
    }

    #[test]
    fn deterministic() {
        let task = small(0.3, 43);
        let run = || {
            let mut m = DeepMatcherSim::new(DeepConfig::with_epochs(3));
            m.fit(&task).unwrap();
            let pairs: Vec<_> = task.test.iter().map(|lp| lp.pair).collect();
            m.predict(&task, &pairs)
        };
        assert_eq!(run(), run());
    }
}
