//! Shared record/pair feature extraction used by several matchers.

use rlb_data::{MatchingTask, PairRef, Record};
use rlb_textsim::{sets, TokenSet};

/// Cached per-record token views for one source, computed once per task.
#[derive(Debug, Clone)]
pub struct RecordViews {
    /// Schema-agnostic token set over all attributes.
    pub full: Vec<TokenSet>,
    /// Token set per attribute.
    pub per_attr: Vec<Vec<TokenSet>>,
}

impl RecordViews {
    /// Builds the views for every record of a source. Tokenization is
    /// independent per record, so records are processed in parallel; the
    /// resulting vectors are in record order either way.
    pub fn build(records: &[Record], arity: usize) -> Self {
        let mut full = Vec::with_capacity(records.len());
        let mut per_attr = Vec::with_capacity(records.len());
        let views = rlb_util::par::par_map(records, |r| {
            let attrs: Vec<TokenSet> = (0..arity)
                .map(|a| TokenSet::from_text(r.value(a)))
                .collect();
            (r.token_set(), attrs)
        });
        for (f, attrs) in views {
            full.push(f);
            per_attr.push(attrs);
        }
        RecordViews { full, per_attr }
    }
}

/// Both sources' views plus the arity, bundled per task.
#[derive(Debug, Clone)]
pub struct TaskViews {
    /// Left-source views.
    pub left: RecordViews,
    /// Right-source views.
    pub right: RecordViews,
    /// Shared attribute count.
    pub arity: usize,
}

impl TaskViews {
    /// Computes the views for a task.
    pub fn build(task: &MatchingTask) -> Self {
        let arity = task.left.arity().max(task.right.arity());
        TaskViews {
            left: RecordViews::build(&task.left.records, arity),
            right: RecordViews::build(&task.right.records, arity),
            arity,
        }
    }

    /// `[CS, JS]` — the canonical 2-D representation of Section III-B, used
    /// by the complexity measures and the degree of linearity.
    pub fn cs_js(&self, p: PairRef) -> [f64; 2] {
        let a = &self.left.full[p.left as usize];
        let b = &self.right.full[p.right as usize];
        [sets::cosine(a, b), sets::jaccard(a, b)]
    }

    /// Schema-agnostic `[CS, DS, JS]` over full-text tokens (SA-ESDE).
    pub fn sa_features(&self, p: PairRef) -> Vec<f64> {
        let a = &self.left.full[p.left as usize];
        let b = &self.right.full[p.right as usize];
        vec![sets::cosine(a, b), sets::dice(a, b), sets::jaccard(a, b)]
    }

    /// Schema-based `[CS, DS, JS]` per attribute (SB-ESDE), `3·|A|` wide.
    pub fn sb_features(&self, p: PairRef) -> Vec<f64> {
        let mut out = Vec::with_capacity(3 * self.arity);
        for a in 0..self.arity {
            let l = &self.left.per_attr[p.left as usize][a];
            let r = &self.right.per_attr[p.right as usize][a];
            out.push(sets::cosine(l, r));
            out.push(sets::dice(l, r));
            out.push(sets::jaccard(l, r));
        }
        out
    }
}

/// Magellan-style feature vector for one pair: eight similarity functions
/// per attribute (token cosine/jaccard, 3-gram jaccard, Jaro, Jaro-Winkler,
/// Levenshtein, symmetric Monge-Elkan over Jaro-Winkler, exact match), with
/// a both-missing indicator convention of 0.5.
pub fn magellan_features(task: &MatchingTask, p: PairRef) -> Vec<f64> {
    let (l, r) = task.records(p);
    let arity = task.left.arity().max(task.right.arity());
    let mut out = Vec::with_capacity(8 * arity);
    for a in 0..arity {
        let va = l.value(a);
        let vb = r.value(a);
        if va.is_empty() && vb.is_empty() {
            out.extend_from_slice(&[0.5; 8]);
            continue;
        }
        if va.is_empty() || vb.is_empty() {
            out.extend_from_slice(&[0.0; 8]);
            continue;
        }
        let ta = TokenSet::from_text(va);
        let tb = TokenSet::from_text(vb);
        let qa = TokenSet::from_qgrams(va, 3);
        let qb = TokenSet::from_qgrams(vb, 3);
        let toks_a = rlb_textsim::tokens(va);
        let toks_b = rlb_textsim::tokens(vb);
        out.push(sets::cosine(&ta, &tb));
        out.push(sets::jaccard(&ta, &tb));
        out.push(sets::jaccard(&qa, &qb));
        out.push(rlb_textsim::edit::jaro(va, vb));
        out.push(rlb_textsim::edit::jaro_winkler(va, vb));
        out.push(rlb_textsim::edit::levenshtein(va, vb));
        out.push(rlb_textsim::hybrid::monge_elkan_sym(
            &toks_a,
            &toks_b,
            rlb_textsim::edit::jaro_winkler,
        ));
        out.push(f64::from((va.to_lowercase() == vb.to_lowercase()) as u8));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testtask::small;

    #[test]
    fn views_cover_all_records() {
        let task = small(0.3, 1);
        let v = TaskViews::build(&task);
        assert_eq!(v.left.full.len(), task.left.len());
        assert_eq!(v.right.full.len(), task.right.len());
        assert_eq!(v.left.per_attr[0].len(), v.arity);
    }

    #[test]
    fn cs_js_matches_direct_computation() {
        let task = small(0.3, 2);
        let v = TaskViews::build(&task);
        let p = task.train[0].pair;
        let (l, r) = task.records(p);
        let expected = [
            sets::cosine(&l.token_set(), &r.token_set()),
            sets::jaccard(&l.token_set(), &r.token_set()),
        ];
        assert_eq!(v.cs_js(p), expected);
    }

    #[test]
    fn feature_widths() {
        let task = small(0.3, 3);
        let v = TaskViews::build(&task);
        let p = task.train[0].pair;
        assert_eq!(v.sa_features(p).len(), 3);
        assert_eq!(v.sb_features(p).len(), 3 * v.arity);
        assert_eq!(magellan_features(&task, p).len(), 8 * v.arity);
    }

    #[test]
    fn all_features_in_unit_interval() {
        let task = small(0.6, 4);
        let v = TaskViews::build(&task);
        for lp in task.all_pairs().take(100) {
            for f in v
                .sa_features(lp.pair)
                .into_iter()
                .chain(v.sb_features(lp.pair))
                .chain(magellan_features(&task, lp.pair))
            {
                assert!((0.0..=1.0).contains(&f), "{f}");
            }
        }
    }

    #[test]
    fn matches_have_higher_sa_features() {
        let task = small(0.3, 5);
        let v = TaskViews::build(&task);
        let mut pos = 0.0;
        let mut npos = 0;
        let mut neg = 0.0;
        let mut nneg = 0;
        for lp in task.all_pairs() {
            let f = v.sa_features(lp.pair)[0];
            if lp.is_match {
                pos += f;
                npos += 1;
            } else {
                neg += f;
                nneg += 1;
            }
        }
        assert!(pos / npos as f64 > neg / nneg as f64);
    }

    #[test]
    fn missing_value_conventions() {
        use rlb_data::Source;
        let mut left = Source::new("L", vec!["a".into(), "b".into()]);
        let mut right = Source::new("R", vec!["a".into(), "b".into()]);
        left.push(vec!["x".into(), String::new()]);
        right.push(vec!["x".into(), String::new()]);
        right.push(vec!["x".into(), "y".into()]);
        let task = MatchingTask {
            name: "m".into(),
            left,
            right,
            train: vec![],
            val: vec![],
            test: vec![],
        };
        // Both missing -> 0.5 block.
        let f = magellan_features(&task, PairRef::new(0, 0));
        assert_eq!(&f[8..16], &[0.5; 8]);
        // One missing -> 0.0 block.
        let f = magellan_features(&task, PairRef::new(0, 1));
        assert_eq!(&f[8..16], &[0.0; 8]);
    }
}
