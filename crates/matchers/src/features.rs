//! Shared record/pair feature extraction used by several matchers.
//!
//! The hot paths (Algorithm 1's 99-threshold sweep, the `[CS, JS]` feature
//! space feeding the 17 complexity measures, and the ESDE matchers) all run
//! over per-record token sets. [`TaskViews`] stores those sets
//! dictionary-interned as [`IdSet`]s — integer merge joins instead of
//! `String` comparisons — and [`TaskViewCache`] shares one build across
//! every consumer so tokenization happens exactly once per record per
//! pipeline run. [`StringTaskViews`] is the byte-identical reference twin
//! kept for verification (same policy as the parallel/sequential twin pair
//! in `rlb-core::linearity`).

use rlb_data::{MatchingTask, PairRef, Record};
use rlb_textsim::{intern, sets, IdSet, ShardedInterner, TokenInterner, TokenSet};
use std::sync::{Arc, OnceLock};

/// Character q-gram lengths the ESDE q-gram variants sweep (Section IV-C).
pub const ESDE_Q_RANGE: std::ops::RangeInclusive<usize> = 2..=10;

/// Cached per-record interned token views for one source.
#[derive(Debug, Clone)]
pub struct RecordViews {
    /// Schema-agnostic token set over all attributes.
    pub full: Vec<IdSet>,
    /// Token set per attribute.
    pub per_attr: Vec<Vec<IdSet>>,
}

/// Schema-agnostic q-gram views: `[record][q-index]` over the full text,
/// `q` ranging over [`ESDE_Q_RANGE`].
#[derive(Debug, Clone)]
pub struct QgramViews {
    /// Left-source sets.
    pub left: Vec<Vec<IdSet>>,
    /// Right-source sets.
    pub right: Vec<Vec<IdSet>>,
}

/// Schema-based q-gram views: `[record][attr][q-index]`.
#[derive(Debug, Clone)]
pub struct QgramAttrViews {
    /// Left-source sets.
    pub left: Vec<Vec<Vec<IdSet>>>,
    /// Right-source sets.
    pub right: Vec<Vec<Vec<IdSet>>>,
}

/// Both sources' interned views plus the arity, bundled per task.
///
/// Token views are built eagerly (every consumer needs them); the q-gram
/// views the ESDE q-gram variants use are built lazily on first request and
/// then shared — a roster run fitting SAQ- and SBQ-ESDE in parallel still
/// tokenizes q-grams once.
#[derive(Debug)]
pub struct TaskViews {
    /// Left-source views.
    pub left: RecordViews,
    /// Right-source views.
    pub right: RecordViews,
    /// Shared attribute count.
    pub arity: usize,
    interner: Arc<ShardedInterner>,
    qgram_full: OnceLock<QgramViews>,
    qgram_attr: OnceLock<QgramAttrViews>,
}

/// Tokenizes every record of a source in parallel: per-attribute token
/// vectors (the full-record tokens are their concatenation, so they are not
/// re-tokenized).
fn tokenize_source(records: &[Record], arity: usize) -> Vec<Vec<Vec<String>>> {
    rlb_util::par::par_map(records, |r| {
        (0..arity)
            .map(|a| rlb_textsim::tokenize::tokens(r.value(a)))
            .collect()
    })
}

/// Interns pre-tokenized records, appending the resulting views to `out`.
/// Sequential in record order, so a fresh interner assigns a deterministic
/// dictionary; similarity outputs are id-label-independent either way (see
/// the twin-policy note on [`ShardedInterner`]).
fn intern_into(
    token_lists: Vec<Vec<Vec<String>>>,
    interner: &ShardedInterner,
    out: &mut RecordViews,
) {
    out.full.reserve(token_lists.len());
    out.per_attr.reserve(token_lists.len());
    for attrs in token_lists {
        let attr_sets: Vec<IdSet> = attrs
            .into_iter()
            .map(|toks| IdSet::from_tokens_shared(interner, toks.iter()))
            .collect();
        out.full.push(IdSet::union_of(&attr_sets));
        out.per_attr.push(attr_sets);
    }
}

impl TaskViews {
    /// Computes the token views for a task (tokenization parallel, interning
    /// sequential; one dictionary shared by both sources).
    pub fn build(task: &MatchingTask) -> Self {
        Self::build_with(task, Arc::new(ShardedInterner::new()))
    }

    /// [`TaskViews::build`] against a caller-supplied dictionary. The
    /// resident service builds its first views this way and then extends
    /// them through the same interner on every ingest.
    pub fn build_with(task: &MatchingTask, interner: Arc<ShardedInterner>) -> Self {
        let arity = task.left.arity().max(task.right.arity());
        let left_toks = tokenize_source(&task.left.records, arity);
        let right_toks = tokenize_source(&task.right.records, arity);
        let mut left = RecordViews {
            full: Vec::new(),
            per_attr: Vec::new(),
        };
        let mut right = RecordViews {
            full: Vec::new(),
            per_attr: Vec::new(),
        };
        intern_into(left_toks, &interner, &mut left);
        intern_into(right_toks, &interner, &mut right);
        TaskViews {
            left,
            right,
            arity,
            interner,
            qgram_full: OnceLock::new(),
            qgram_attr: OnceLock::new(),
        }
    }

    /// The shared token dictionary behind these views.
    pub fn interner(&self) -> &Arc<ShardedInterner> {
        &self.interner
    }

    /// Number of distinct tokens in the task's dictionary.
    pub fn vocab_size(&self) -> usize {
        self.interner.len()
    }

    /// `[CS, JS]` — the canonical 2-D representation of Section III-B, used
    /// by the complexity measures and the degree of linearity.
    pub fn cs_js(&self, p: PairRef) -> [f64; 2] {
        let a = &self.left.full[p.left as usize];
        let b = &self.right.full[p.right as usize];
        [intern::cosine(a, b), intern::jaccard(a, b)]
    }

    /// `[CS, JS]` over one attribute's token sets — the schema-aware
    /// linearity variant's per-attribute scores.
    pub fn attr_cs_js(&self, p: PairRef, attr: usize) -> [f64; 2] {
        let a = &self.left.per_attr[p.left as usize][attr];
        let b = &self.right.per_attr[p.right as usize][attr];
        [intern::cosine(a, b), intern::jaccard(a, b)]
    }

    /// Schema-agnostic `[CS, DS, JS]` over full-text tokens (SA-ESDE).
    pub fn sa_features(&self, p: PairRef) -> Vec<f64> {
        let a = &self.left.full[p.left as usize];
        let b = &self.right.full[p.right as usize];
        vec![
            intern::cosine(a, b),
            intern::dice(a, b),
            intern::jaccard(a, b),
        ]
    }

    /// Schema-based `[CS, DS, JS]` per attribute (SB-ESDE), `3·|A|` wide.
    pub fn sb_features(&self, p: PairRef) -> Vec<f64> {
        let mut out = Vec::with_capacity(3 * self.arity);
        for a in 0..self.arity {
            let l = &self.left.per_attr[p.left as usize][a];
            let r = &self.right.per_attr[p.right as usize][a];
            out.push(intern::cosine(l, r));
            out.push(intern::dice(l, r));
            out.push(intern::jaccard(l, r));
        }
        out
    }

    /// Schema-agnostic q-gram views (built on first call, then cached).
    /// `task` must be the task the views were built from.
    pub fn qgrams_full(&self, task: &MatchingTask) -> &QgramViews {
        self.qgram_full.get_or_init(|| {
            let gram = |records: &[Record]| -> Vec<Vec<Vec<String>>> {
                rlb_util::par::par_map(records, |r| {
                    let text = r.full_text();
                    ESDE_Q_RANGE
                        .map(|q| rlb_textsim::tokenize::qgrams(&text, q))
                        .collect()
                })
            };
            let left_grams = gram(&task.left.records);
            let right_grams = gram(&task.right.records);
            let mut interner = TokenInterner::new();
            let mut build = |grams: Vec<Vec<Vec<String>>>| {
                grams
                    .into_iter()
                    .map(|per_q| {
                        per_q
                            .into_iter()
                            .map(|g| IdSet::from_tokens(&mut interner, g.iter()))
                            .collect()
                    })
                    .collect()
            };
            QgramViews {
                left: build(left_grams),
                right: build(right_grams),
            }
        })
    }

    /// Schema-based q-gram views (built on first call, then cached).
    pub fn qgrams_per_attr(&self, task: &MatchingTask) -> &QgramAttrViews {
        self.qgram_attr.get_or_init(|| {
            let arity = self.arity;
            let gram = |records: &[Record]| -> Vec<Vec<Vec<Vec<String>>>> {
                rlb_util::par::par_map(records, |r| {
                    (0..arity)
                        .map(|a| {
                            ESDE_Q_RANGE
                                .map(|q| rlb_textsim::tokenize::qgrams(r.value(a), q))
                                .collect()
                        })
                        .collect()
                })
            };
            let left_grams = gram(&task.left.records);
            let right_grams = gram(&task.right.records);
            let mut interner = TokenInterner::new();
            let mut build = |grams: Vec<Vec<Vec<Vec<String>>>>| {
                grams
                    .into_iter()
                    .map(|attrs| {
                        attrs
                            .into_iter()
                            .map(|per_q| {
                                per_q
                                    .into_iter()
                                    .map(|g| IdSet::from_tokens(&mut interner, g.iter()))
                                    .collect()
                            })
                            .collect()
                    })
                    .collect()
            };
            QgramAttrViews {
                left: build(left_grams),
                right: build(right_grams),
            }
        })
    }

    /// The q-gram views if already built (panics otherwise — callers must
    /// have gone through [`TaskViews::qgrams_full`] during preparation).
    pub fn qgrams_full_built(&self) -> &QgramViews {
        self.qgram_full.get().expect("qgrams_full not built")
    }

    /// The per-attribute q-gram views if already built.
    pub fn qgrams_per_attr_built(&self) -> &QgramAttrViews {
        self.qgram_attr.get().expect("qgrams_per_attr not built")
    }
}

/// Cheaply cloneable handle to one task's [`TaskViews`], built once per task
/// and threaded through `degree_of_linearity`, the assessment, the roster
/// sweep, and the ESDE variants.
#[derive(Debug, Clone)]
pub struct TaskViewCache {
    views: Arc<TaskViews>,
}

impl TaskViewCache {
    /// Builds the views for a task.
    pub fn build(task: &MatchingTask) -> Self {
        TaskViewCache {
            views: Arc::new(TaskViews::build(task)),
        }
    }

    /// The shared views.
    pub fn views(&self) -> &TaskViews {
        &self.views
    }

    /// Extends this cache over records appended to `task` since it was
    /// built, returning a new cache. Existing per-record views are reused
    /// (cloned id vectors — no re-tokenization, no re-interning) and only
    /// the appended tail is tokenized and interned, through the *same*
    /// shared dictionary; the interner is append-only, so the old ids stay
    /// valid. Readers holding the previous `Arc` are never disturbed.
    ///
    /// The q-gram views are deliberately not carried over: they intern
    /// through their own per-build dictionary, so they rebuild lazily on
    /// first use after an extension.
    ///
    /// # Panics
    /// If `task` has fewer records on either side than this cache covers,
    /// or a different arity — extension is strictly append-only.
    pub fn extended(&self, task: &MatchingTask) -> TaskViewCache {
        let arity = task.left.arity().max(task.right.arity());
        assert_eq!(arity, self.views.arity, "arity changed across extension");
        let interner = self.views.interner.clone();
        let extend_side = |old: &RecordViews, records: &[Record]| -> RecordViews {
            assert!(
                records.len() >= old.full.len(),
                "records shrank across extension ({} -> {})",
                old.full.len(),
                records.len()
            );
            let tail = tokenize_source(&records[old.full.len()..], arity);
            let mut out = old.clone();
            intern_into(tail, &interner, &mut out);
            out
        };
        let left = extend_side(&self.views.left, &task.left.records);
        let right = extend_side(&self.views.right, &task.right.records);
        TaskViewCache {
            views: Arc::new(TaskViews {
                left,
                right,
                arity,
                interner,
                qgram_full: OnceLock::new(),
                qgram_attr: OnceLock::new(),
            }),
        }
    }
}

impl std::ops::Deref for TaskViewCache {
    type Target = TaskViews;

    fn deref(&self) -> &TaskViews {
        &self.views
    }
}

/// String-based per-record views — the reference twin of [`RecordViews`].
#[derive(Debug, Clone)]
pub struct StringRecordViews {
    /// Schema-agnostic token set over all attributes.
    pub full: Vec<TokenSet>,
    /// Token set per attribute.
    pub per_attr: Vec<Vec<TokenSet>>,
}

impl StringRecordViews {
    /// Builds the views for every record of a source (in parallel; record
    /// order is preserved).
    pub fn build(records: &[Record], arity: usize) -> Self {
        let mut full = Vec::with_capacity(records.len());
        let mut per_attr = Vec::with_capacity(records.len());
        let views = rlb_util::par::par_map(records, |r| {
            let attrs: Vec<TokenSet> = (0..arity)
                .map(|a| TokenSet::from_text(r.value(a)))
                .collect();
            (r.token_set(), attrs)
        });
        for (f, attrs) in views {
            full.push(f);
            per_attr.push(attrs);
        }
        StringRecordViews { full, per_attr }
    }
}

/// String-based task views — the byte-identical reference twin of
/// [`TaskViews`], kept for equality assertions and as the baseline side of
/// the interned-vs-string timing bench. Not used by any hot path.
#[derive(Debug, Clone)]
pub struct StringTaskViews {
    /// Left-source views.
    pub left: StringRecordViews,
    /// Right-source views.
    pub right: StringRecordViews,
    /// Shared attribute count.
    pub arity: usize,
}

impl StringTaskViews {
    /// Computes the string views for a task.
    pub fn build(task: &MatchingTask) -> Self {
        let arity = task.left.arity().max(task.right.arity());
        StringTaskViews {
            left: StringRecordViews::build(&task.left.records, arity),
            right: StringRecordViews::build(&task.right.records, arity),
            arity,
        }
    }

    /// `[CS, JS]` via string comparison — must equal
    /// [`TaskViews::cs_js`] bit-for-bit.
    pub fn cs_js(&self, p: PairRef) -> [f64; 2] {
        let a = &self.left.full[p.left as usize];
        let b = &self.right.full[p.right as usize];
        [sets::cosine(a, b), sets::jaccard(a, b)]
    }

    /// Schema-agnostic `[CS, DS, JS]` — string twin of
    /// [`TaskViews::sa_features`].
    pub fn sa_features(&self, p: PairRef) -> Vec<f64> {
        let a = &self.left.full[p.left as usize];
        let b = &self.right.full[p.right as usize];
        vec![sets::cosine(a, b), sets::dice(a, b), sets::jaccard(a, b)]
    }

    /// Schema-based `[CS, DS, JS]` per attribute — string twin of
    /// [`TaskViews::sb_features`].
    pub fn sb_features(&self, p: PairRef) -> Vec<f64> {
        let mut out = Vec::with_capacity(3 * self.arity);
        for a in 0..self.arity {
            let l = &self.left.per_attr[p.left as usize][a];
            let r = &self.right.per_attr[p.right as usize][a];
            out.push(sets::cosine(l, r));
            out.push(sets::dice(l, r));
            out.push(sets::jaccard(l, r));
        }
        out
    }
}

/// Magellan-style feature vector for one pair: eight similarity functions
/// per attribute (token cosine/jaccard, 3-gram jaccard, Jaro, Jaro-Winkler,
/// Levenshtein, symmetric Monge-Elkan over Jaro-Winkler, exact match), with
/// a both-missing indicator convention of 0.5.
pub fn magellan_features(task: &MatchingTask, p: PairRef) -> Vec<f64> {
    let (l, r) = task.records(p);
    let arity = task.left.arity().max(task.right.arity());
    let mut out = Vec::with_capacity(8 * arity);
    for a in 0..arity {
        let va = l.value(a);
        let vb = r.value(a);
        if va.is_empty() && vb.is_empty() {
            out.extend_from_slice(&[0.5; 8]);
            continue;
        }
        if va.is_empty() || vb.is_empty() {
            out.extend_from_slice(&[0.0; 8]);
            continue;
        }
        let ta = TokenSet::from_text(va);
        let tb = TokenSet::from_text(vb);
        let qa = TokenSet::from_qgrams(va, 3);
        let qb = TokenSet::from_qgrams(vb, 3);
        let toks_a = rlb_textsim::tokens(va);
        let toks_b = rlb_textsim::tokens(vb);
        out.push(sets::cosine(&ta, &tb));
        out.push(sets::jaccard(&ta, &tb));
        out.push(sets::jaccard(&qa, &qb));
        out.push(rlb_textsim::edit::jaro(va, vb));
        out.push(rlb_textsim::edit::jaro_winkler(va, vb));
        out.push(rlb_textsim::edit::levenshtein(va, vb));
        out.push(rlb_textsim::hybrid::monge_elkan_sym(
            &toks_a,
            &toks_b,
            rlb_textsim::edit::jaro_winkler,
        ));
        out.push(f64::from((va.to_lowercase() == vb.to_lowercase()) as u8));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testtask::small;

    #[test]
    fn views_cover_all_records() {
        let task = small(0.3, 1);
        let v = TaskViews::build(&task);
        assert_eq!(v.left.full.len(), task.left.len());
        assert_eq!(v.right.full.len(), task.right.len());
        assert_eq!(v.left.per_attr[0].len(), v.arity);
        assert!(v.vocab_size() > 0);
    }

    #[test]
    fn cs_js_matches_direct_computation() {
        let task = small(0.3, 2);
        let v = TaskViews::build(&task);
        let p = task.train[0].pair;
        let (l, r) = task.records(p);
        let expected = [
            sets::cosine(&l.token_set(), &r.token_set()),
            sets::jaccard(&l.token_set(), &r.token_set()),
        ];
        assert_eq!(v.cs_js(p), expected);
    }

    #[test]
    fn interned_views_equal_string_twin_bitwise() {
        let task = small(0.4, 7);
        let interned = TaskViews::build(&task);
        let strings = StringTaskViews::build(&task);
        for lp in task.all_pairs() {
            let p = lp.pair;
            let [ic, ij] = interned.cs_js(p);
            let [sc, sj] = strings.cs_js(p);
            assert_eq!(ic.to_bits(), sc.to_bits());
            assert_eq!(ij.to_bits(), sj.to_bits());
            for (a, b) in interned
                .sa_features(p)
                .iter()
                .chain(interned.sb_features(p).iter())
                .zip(strings.sa_features(p).iter().chain(&strings.sb_features(p)))
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn qgram_views_build_once_and_cover_records() {
        let task = small(0.3, 8);
        let cache = TaskViewCache::build(&task);
        let qv = cache.qgrams_full(&task);
        assert_eq!(qv.left.len(), task.left.len());
        assert_eq!(qv.left[0].len(), ESDE_Q_RANGE.count());
        // Second request returns the same allocation (lazy build is shared).
        assert!(std::ptr::eq(qv, cache.qgrams_full_built()));
        let qa = cache.qgrams_per_attr(&task);
        assert_eq!(qa.right.len(), task.right.len());
        assert_eq!(qa.right[0].len(), cache.arity);
        assert_eq!(qa.right[0][0].len(), ESDE_Q_RANGE.count());
    }

    #[test]
    fn cache_clones_share_views() {
        let task = small(0.3, 9);
        let cache = TaskViewCache::build(&task);
        let clone = cache.clone();
        assert!(std::ptr::eq(cache.views(), clone.views()));
    }

    /// Truncates a task's record stores to a prefix (labelled pairs are
    /// irrelevant here — views are per-record).
    fn prefix_task(task: &MatchingTask, left: usize, right: usize) -> MatchingTask {
        let mut t = task.clone();
        t.left.records.truncate(left);
        t.right.records.truncate(right);
        t
    }

    #[test]
    fn extended_views_match_batch_rebuild_bitwise() {
        let task = small(0.4, 11);
        let (nl, nr) = (task.left.len(), task.right.len());
        // Build on a prefix, then extend in two unequal steps (the second
        // leaves one side untouched) up to the full task.
        let cache = TaskViewCache::build(&prefix_task(&task, nl / 2, nr / 3));
        let cache = cache.extended(&prefix_task(&task, nl - 1, nr));
        let grown = cache.extended(&task);
        let batch = TaskViewCache::build(&task);
        assert_eq!(grown.left.full.len(), nl);
        assert_eq!(grown.right.full.len(), nr);
        for lp in task.all_pairs() {
            let p = lp.pair;
            let [gc, gj] = grown.cs_js(p);
            let [bc, bj] = batch.cs_js(p);
            assert_eq!(gc.to_bits(), bc.to_bits());
            assert_eq!(gj.to_bits(), bj.to_bits());
            for (a, b) in grown
                .sa_features(p)
                .iter()
                .chain(grown.sb_features(p).iter())
                .zip(batch.sa_features(p).iter().chain(&batch.sb_features(p)))
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn extension_shares_the_interner_and_reuses_old_views() {
        let task = small(0.3, 12);
        let prefix = prefix_task(&task, task.left.len() - 2, task.right.len());
        let cache = TaskViewCache::build(&prefix);
        let vocab_before = cache.vocab_size();
        let grown = cache.extended(&task);
        // Same dictionary object; it can only have grown.
        assert!(Arc::ptr_eq(cache.interner(), grown.interner()));
        assert!(grown.vocab_size() >= vocab_before);
        // Old per-record views carry over untouched.
        assert_eq!(grown.left.full[0], cache.left.full[0]);
        // The previous cache still answers queries (readers undisturbed).
        let p = prefix.train[0].pair;
        assert_eq!(cache.cs_js(p)[0].to_bits(), grown.cs_js(p)[0].to_bits());
    }

    #[test]
    fn empty_extension_is_identity_on_views() {
        let task = small(0.3, 13);
        let cache = TaskViewCache::build(&task);
        let same = cache.extended(&task);
        assert_eq!(same.left.full.len(), cache.left.full.len());
        assert_eq!(same.left.full, cache.left.full);
        assert_eq!(same.right.full, cache.right.full);
        assert_eq!(same.vocab_size(), cache.vocab_size());
    }

    #[test]
    fn feature_widths() {
        let task = small(0.3, 3);
        let v = TaskViews::build(&task);
        let p = task.train[0].pair;
        assert_eq!(v.sa_features(p).len(), 3);
        assert_eq!(v.sb_features(p).len(), 3 * v.arity);
        assert_eq!(magellan_features(&task, p).len(), 8 * v.arity);
    }

    #[test]
    fn all_features_in_unit_interval() {
        let task = small(0.6, 4);
        let v = TaskViews::build(&task);
        for lp in task.all_pairs().take(100) {
            for f in v
                .sa_features(lp.pair)
                .into_iter()
                .chain(v.sb_features(lp.pair))
                .chain(magellan_features(&task, lp.pair))
            {
                assert!((0.0..=1.0).contains(&f), "{f}");
            }
        }
    }

    #[test]
    fn matches_have_higher_sa_features() {
        let task = small(0.3, 5);
        let v = TaskViews::build(&task);
        let mut pos = 0.0;
        let mut npos = 0;
        let mut neg = 0.0;
        let mut nneg = 0;
        for lp in task.all_pairs() {
            let f = v.sa_features(lp.pair)[0];
            if lp.is_match {
                pos += f;
                npos += 1;
            } else {
                neg += f;
                nneg += 1;
            }
        }
        assert!(pos / npos as f64 > neg / nneg as f64);
    }

    #[test]
    fn missing_value_conventions() {
        use rlb_data::Source;
        let mut left = Source::new("L", vec!["a".into(), "b".into()]);
        let mut right = Source::new("R", vec!["a".into(), "b".into()]);
        left.push(vec!["x".into(), String::new()]);
        right.push(vec!["x".into(), String::new()]);
        right.push(vec!["x".into(), "y".into()]);
        let task = MatchingTask {
            name: "m".into(),
            left,
            right,
            train: vec![],
            val: vec![],
            test: vec![],
        };
        // Both missing -> 0.5 block.
        let f = magellan_features(&task, PairRef::new(0, 0));
        assert_eq!(&f[8..16], &[0.5; 8]);
        // One missing -> 0.0 block.
        let f = magellan_features(&task, PairRef::new(0, 1));
        assert_eq!(&f[8..16], &[0.0; 8]);
    }
}
