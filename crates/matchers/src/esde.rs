//! The six linear ESDE matchers — Algorithm 2 of the paper
//! (*Efficient Supervised Difficulty Estimation*).
//!
//! Training phase: for every feature, sweep thresholds `0.01..0.99` (step
//! 0.01) over the training set and record the best-F1 threshold. Validation
//! phase: apply each feature's learned threshold to the validation set and
//! keep the single best feature. Testing phase: classify with that one
//! `(feature, threshold)` rule. The classifier is therefore linear in the
//! strictest sense — an axis-parallel threshold — which is exactly what
//! makes its F1 a *difficulty estimate* for the benchmark.

use crate::features::{TaskViewCache, ESDE_Q_RANGE};
use crate::Matcher;
use rlb_data::{LabeledPair, MatchingTask, PairRef};
use rlb_embed::{cosine_sim, euclidean_sim, wasserstein_sim, SentenceEmbedder};
use rlb_textsim::intern;
use rlb_util::{Error, Result};

/// Which feature space the ESDE instance uses (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EsdeVariant {
    /// Schema-agnostic token `[CS, DS, JS]` (`|F| = 3`).
    SA,
    /// Schema-based token `[CS, DS, JS]` per attribute (`|F| = 3·|A|`).
    SB,
    /// Schema-agnostic character q-grams, `q ∈ 2..=10` (`|F| = 27`).
    SAQ,
    /// Schema-based q-grams per attribute (`|F| = 27·|A|`).
    SBQ,
    /// Schema-agnostic sentence embeddings `[CS, ES, WS]` (`|F| = 3`).
    SAS,
    /// Schema-based sentence embeddings per attribute (`|F| = 3·|A|`).
    SBS,
}

impl EsdeVariant {
    /// Paper name of the matcher.
    pub fn name(&self) -> &'static str {
        match self {
            EsdeVariant::SA => "SA-ESDE",
            EsdeVariant::SB => "SB-ESDE",
            EsdeVariant::SAQ => "SAQ-ESDE",
            EsdeVariant::SBQ => "SBQ-ESDE",
            EsdeVariant::SAS => "SAS-ESDE",
            EsdeVariant::SBS => "SBS-ESDE",
        }
    }

    /// All six variants.
    pub fn all() -> [EsdeVariant; 6] {
        [
            EsdeVariant::SA,
            EsdeVariant::SB,
            EsdeVariant::SAQ,
            EsdeVariant::SBQ,
            EsdeVariant::SAS,
            EsdeVariant::SBS,
        ]
    }
}

/// Embedding dimensionality for the sentence variants.
const SENT_DIM: usize = 64;

/// Record-level caches for one task, per variant family. Token and q-gram
/// variants borrow the shared [`TaskViewCache`]; the sentence variants own
/// their embeddings (no other consumer needs them).
enum Prepared {
    /// SA/SB: interned token views.
    Tokens(TaskViewCache),
    /// SAQ: schema-agnostic q-gram views (built inside the shared cache).
    QGrams(TaskViewCache),
    /// SBQ: per-attribute q-gram views (built inside the shared cache).
    QGramsPerAttr(TaskViewCache),
    Sentence {
        left: Vec<Vec<f32>>,
        right: Vec<Vec<f32>>,
    },
    SentencePerAttr {
        /// `[record][attr]`.
        left: Vec<Vec<Vec<f32>>>,
        right: Vec<Vec<Vec<f32>>>,
        arity: usize,
    },
}

/// One fitted ESDE matcher.
pub struct Esde {
    variant: EsdeVariant,
    cache: Option<TaskViewCache>,
    prepared: Option<Prepared>,
    best_feature: usize,
    best_threshold: f64,
    fitted: bool,
}

impl Esde {
    /// Unfitted matcher of the given variant (builds its own task views on
    /// `fit`; prefer [`Esde::with_views`] when running several variants on
    /// one task).
    pub fn new(variant: EsdeVariant) -> Self {
        Esde {
            variant,
            cache: None,
            prepared: None,
            best_feature: 0,
            best_threshold: 0.5,
            fitted: false,
        }
    }

    /// Unfitted matcher sharing a pre-built view cache. The cache must have
    /// been built from the task later passed to `fit` — the roster runner
    /// builds it once per task and hands clones to all six variants.
    pub fn with_views(variant: EsdeVariant, cache: TaskViewCache) -> Self {
        Esde {
            cache: Some(cache),
            ..Esde::new(variant)
        }
    }

    /// The `(feature index, threshold)` selected on the validation set.
    pub fn selected(&self) -> Option<(usize, f64)> {
        self.fitted
            .then_some((self.best_feature, self.best_threshold))
    }

    /// The shared view cache if one was supplied, otherwise a fresh build.
    fn cache_for(&self, task: &MatchingTask) -> TaskViewCache {
        self.cache
            .clone()
            .unwrap_or_else(|| TaskViewCache::build(task))
    }

    fn prepare(&self, task: &MatchingTask) -> Prepared {
        match self.variant {
            EsdeVariant::SA | EsdeVariant::SB => Prepared::Tokens(self.cache_for(task)),
            EsdeVariant::SAQ => {
                let cache = self.cache_for(task);
                cache.qgrams_full(task); // force the lazy build here, not per pair
                Prepared::QGrams(cache)
            }
            EsdeVariant::SBQ => {
                let cache = self.cache_for(task);
                cache.qgrams_per_attr(task);
                Prepared::QGramsPerAttr(cache)
            }
            EsdeVariant::SAS => {
                let embedder = fit_sentence_embedder(task);
                let embed = |records: &[rlb_data::Record]| {
                    records
                        .iter()
                        .map(|r| embedder.encode(&r.full_text()))
                        .collect()
                };
                Prepared::Sentence {
                    left: embed(&task.left.records),
                    right: embed(&task.right.records),
                }
            }
            EsdeVariant::SBS => {
                let embedder = fit_sentence_embedder(task);
                let arity = task.left.arity().max(task.right.arity());
                let embed = |records: &[rlb_data::Record]| {
                    records
                        .iter()
                        .map(|r| (0..arity).map(|a| embedder.encode(r.value(a))).collect())
                        .collect()
                };
                Prepared::SentencePerAttr {
                    left: embed(&task.left.records),
                    right: embed(&task.right.records),
                    arity,
                }
            }
        }
    }

    fn feature_vector(&self, p: PairRef) -> Vec<f64> {
        let prepared = self.prepared.as_ref().expect("prepare before featurize");
        let (li, ri) = (p.left as usize, p.right as usize);
        match prepared {
            Prepared::Tokens(views) => match self.variant {
                EsdeVariant::SA => views.sa_features(p),
                _ => views.sb_features(p),
            },
            Prepared::QGrams(cache) => {
                let qv = cache.qgrams_full_built();
                let mut out = Vec::with_capacity(3 * qv.left[li].len());
                for (a, b) in qv.left[li].iter().zip(&qv.right[ri]) {
                    out.push(intern::cosine(a, b));
                    out.push(intern::dice(a, b));
                    out.push(intern::jaccard(a, b));
                }
                out
            }
            Prepared::QGramsPerAttr(cache) => {
                let qv = cache.qgrams_per_attr_built();
                let mut out = Vec::with_capacity(3 * cache.arity * ESDE_Q_RANGE.count());
                for attr in 0..cache.arity {
                    for (a, b) in qv.left[li][attr].iter().zip(&qv.right[ri][attr]) {
                        out.push(intern::cosine(a, b));
                        out.push(intern::dice(a, b));
                        out.push(intern::jaccard(a, b));
                    }
                }
                out
            }
            Prepared::Sentence { left, right } => {
                let (a, b) = (&left[li], &right[ri]);
                vec![cosine_sim(a, b), euclidean_sim(a, b), wasserstein_sim(a, b)]
            }
            Prepared::SentencePerAttr { left, right, arity } => {
                let mut out = Vec::with_capacity(3 * arity);
                for attr in 0..*arity {
                    let (a, b) = (&left[li][attr], &right[ri][attr]);
                    out.push(cosine_sim(a, b));
                    out.push(euclidean_sim(a, b));
                    out.push(wasserstein_sim(a, b));
                }
                out
            }
        }
    }

    fn feature_matrix(&self, pairs: &[LabeledPair]) -> (Vec<Vec<f64>>, Vec<bool>) {
        let xs = pairs
            .iter()
            .map(|lp| self.feature_vector(lp.pair))
            .collect();
        let ys = pairs.iter().map(|lp| lp.is_match).collect();
        (xs, ys)
    }
}

fn fit_sentence_embedder(task: &MatchingTask) -> SentenceEmbedder {
    let corpus: Vec<String> = task
        .left
        .records
        .iter()
        .chain(task.right.records.iter())
        .map(|r| r.full_text())
        .collect();
    SentenceEmbedder::fit(corpus.iter().map(|s| s.as_str()), SENT_DIM, 0x535E)
}

/// Sweeps thresholds `0.01..=0.99` (step 0.01) and returns
/// `(best F1, best threshold)` — the shared inner loop of Algorithms 1
/// and 2. Ties prefer the lower threshold (reached first).
///
/// When no threshold achieves F1 > 0 (e.g. all-negative labels or empty
/// input), the reported threshold is 0.01 — the lowest grid value — so
/// callers always receive a threshold that lies inside the sweep range
/// instead of the off-grid sentinel 0.0.
pub fn sweep_threshold(scores: &[f64], labels: &[bool]) -> (f64, f64) {
    debug_assert_eq!(scores.len(), labels.len());
    rlb_obs::counter_add("esde.threshold_sweeps", 1);
    let total_pos = labels.iter().filter(|&&y| y).count();
    let mut best = (0.0f64, 0.01f64);
    for step in 1..100 {
        let t = step as f64 / 100.0;
        let mut tp = 0usize;
        let mut fp = 0usize;
        for (&s, &y) in scores.iter().zip(labels) {
            if t <= s {
                if y {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        let fn_ = total_pos - tp;
        let f1 = if 2 * tp + fp + fn_ == 0 {
            0.0
        } else {
            2.0 * tp as f64 / (2 * tp + fp + fn_) as f64
        };
        if f1 > best.0 {
            best = (f1, t);
        }
    }
    best
}

impl Matcher for Esde {
    fn name(&self) -> String {
        self.variant.name().to_string()
    }

    fn fit(&mut self, task: &MatchingTask) -> Result<()> {
        if task.train.is_empty() {
            return Err(Error::EmptyInput("ESDE training set"));
        }
        let _span = rlb_obs::span!("esde.fit", "{} on {}", self.variant.name(), task.name);
        self.prepared = Some(self.prepare(task));

        // Training phase: best threshold per feature on T.
        let (train_x, train_y) = self.feature_matrix(&task.train);
        let n_features = train_x[0].len();
        let mut per_feature: Vec<(f64, f64)> = Vec::with_capacity(n_features); // (f1, t)
        for f in 0..n_features {
            let col: Vec<f64> = train_x.iter().map(|x| x[f]).collect();
            per_feature.push(sweep_threshold(&col, &train_y));
        }

        // Validation phase: pick the feature whose learned threshold scores
        // best on V (falling back to the training scores when V is empty).
        let (val_x, val_y) = if task.val.is_empty() {
            (train_x, train_y)
        } else {
            self.feature_matrix(&task.val)
        };
        let mut best_f = 0usize;
        let mut best_f1 = -1.0f64;
        for f in 0..n_features {
            let t = per_feature[f].1;
            let preds: Vec<bool> = val_x.iter().map(|x| t <= x[f]).collect();
            let f1 = rlb_ml::metrics::f1_score(&preds, &val_y);
            if f1 > best_f1 {
                best_f1 = f1;
                best_f = f;
            }
        }
        self.best_feature = best_f;
        self.best_threshold = per_feature[best_f].1;
        self.fitted = true;
        Ok(())
    }

    fn predict(&mut self, _task: &MatchingTask, pairs: &[PairRef]) -> Vec<bool> {
        assert!(self.fitted, "Esde::predict before fit");
        pairs
            .iter()
            .map(|&p| {
                let f = self.feature_vector(p);
                self.best_threshold <= f[self.best_feature]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use crate::testtask::small;

    #[test]
    fn sweep_threshold_finds_perfect_split() {
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        let labels = vec![false, false, true, true];
        let (f1, t) = sweep_threshold(&scores, &labels);
        assert_eq!(f1, 1.0);
        assert!(t > 0.2 && t <= 0.8, "threshold {t}");
    }

    #[test]
    fn sweep_threshold_handles_all_negative() {
        let (f1, t) = sweep_threshold(&[0.3, 0.4], &[false, false]);
        assert_eq!(f1, 0.0);
        assert_eq!(
            t, 0.01,
            "degenerate input must report an in-range threshold"
        );
    }

    #[test]
    fn sweep_threshold_degenerate_inputs_stay_in_sweep_range() {
        // No threshold reaches F1 > 0 in any of these; the reported
        // threshold must still be a grid value, never the old 0.0 sentinel.
        let cases: [(&[f64], &[bool]); 3] = [
            (&[], &[]),
            (&[0.5, 0.7, 0.9], &[false, false, false]),
            // Positives exist but score 0.0: never predicted at any t.
            (&[0.0, 0.0], &[true, true]),
        ];
        for (scores, labels) in cases {
            let (f1, t) = sweep_threshold(scores, labels);
            assert_eq!(f1, 0.0, "scores {scores:?}");
            assert!(
                (0.01..=0.99).contains(&t),
                "scores {scores:?}: threshold {t}"
            );
        }
    }

    #[test]
    fn sweep_threshold_inseparable_scores_below_one() {
        let scores = vec![0.5, 0.5, 0.5, 0.5];
        let labels = vec![true, false, true, false];
        let (f1, _) = sweep_threshold(&scores, &labels);
        assert!(f1 > 0.0 && f1 < 1.0);
    }

    #[test]
    fn all_variants_fit_and_beat_chance_on_easy_data() {
        let task = small(0.1, 11);
        for variant in EsdeVariant::all() {
            let mut m = Esde::new(variant);
            let metrics = evaluate(&mut m, &task).unwrap();
            assert!(
                metrics.f1 > 0.6,
                "{} should do well on easy data, got {:.3}",
                variant.name(),
                metrics.f1
            );
            assert!(m.selected().is_some());
        }
    }

    #[test]
    fn esde_degrades_on_hard_data() {
        let easy = small(0.08, 12);
        let hard = small(0.75, 12);
        let f1_of = |task| {
            let mut m = Esde::new(EsdeVariant::SA);
            evaluate(&mut m, task).unwrap().f1
        };
        let fe = f1_of(&easy);
        let fh = f1_of(&hard);
        assert!(fe > fh + 0.1, "easy {fe:.3} vs hard {fh:.3}");
    }

    #[test]
    fn feature_widths_match_variant_contract() {
        let task = small(0.3, 13);
        let arity = task.left.arity();
        let widths = [
            (EsdeVariant::SA, 3),
            (EsdeVariant::SB, 3 * arity),
            (EsdeVariant::SAQ, 27),
            (EsdeVariant::SBQ, 27 * arity),
            (EsdeVariant::SAS, 3),
            (EsdeVariant::SBS, 3 * arity),
        ];
        for (variant, width) in widths {
            let mut m = Esde::new(variant);
            m.prepared = Some(m.prepare(&task));
            assert_eq!(
                m.feature_vector(task.train[0].pair).len(),
                width,
                "{}",
                variant.name()
            );
        }
    }

    #[test]
    fn shared_cache_is_byte_identical_to_private_build() {
        let task = small(0.4, 16);
        let cache = TaskViewCache::build(&task);
        let pairs: Vec<PairRef> = task.test.iter().map(|lp| lp.pair).collect();
        for variant in [
            EsdeVariant::SA,
            EsdeVariant::SB,
            EsdeVariant::SAQ,
            EsdeVariant::SBQ,
        ] {
            let mut own = Esde::new(variant);
            own.fit(&task).unwrap();
            let mut shared = Esde::with_views(variant, cache.clone());
            shared.fit(&task).unwrap();
            assert_eq!(own.selected(), shared.selected(), "{}", variant.name());
            assert_eq!(
                own.predict(&task, &pairs),
                shared.predict(&task, &pairs),
                "{}",
                variant.name()
            );
        }
    }

    #[test]
    fn deterministic() {
        let task = small(0.4, 14);
        let run = || {
            let mut m = Esde::new(EsdeVariant::SB);
            m.fit(&task).unwrap();
            m.selected().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_training_set_errors() {
        let mut task = small(0.3, 15);
        task.train.clear();
        let mut m = Esde::new(EsdeVariant::SA);
        assert!(m.fit(&task).is_err());
    }
}
