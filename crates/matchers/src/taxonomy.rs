//! The DL-matcher taxonomy of Table II.

/// Token-embedding context dimension of the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbeddingContext {
    /// Pre-trained, context-free vectors (word2vec / GloVe / fastText).
    Static,
    /// Context-aware BERT-style vectors.
    Dynamic,
    /// Supports both (GNEM).
    Both,
}

/// Schema-awareness dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaAwareness {
    /// Requires aligned schemata.
    Homogeneous,
    /// Copes with unaligned schemata.
    Heterogeneous,
}

/// Entity-similarity-context dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityContext {
    /// Each candidate pair is judged in isolation.
    Local,
    /// Decisions use information across candidate pairs / the whole dataset.
    Global,
}

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaxonomyRow {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Token-embedding context.
    pub context: EmbeddingContext,
    /// Schema awareness.
    pub schema: SchemaAwareness,
    /// Similarity context.
    pub similarity: SimilarityContext,
}

/// Table II verbatim.
pub fn taxonomy() -> Vec<TaxonomyRow> {
    use EmbeddingContext::*;
    use SchemaAwareness::*;
    use SimilarityContext::*;
    vec![
        TaxonomyRow {
            algorithm: "DeepMatcher",
            context: Static,
            schema: Homogeneous,
            similarity: Local,
        },
        TaxonomyRow {
            algorithm: "EMTransformer",
            context: Dynamic,
            schema: Heterogeneous,
            similarity: Local,
        },
        TaxonomyRow {
            algorithm: "GNEM",
            context: Both,
            schema: Homogeneous,
            similarity: Global,
        },
        TaxonomyRow {
            algorithm: "DITTO",
            context: Dynamic,
            schema: Heterogeneous,
            similarity: Local,
        },
        TaxonomyRow {
            algorithm: "HierMatcher",
            context: Dynamic,
            schema: Heterogeneous,
            similarity: Local,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_methods_cover_all_cells() {
        let rows = taxonomy();
        assert_eq!(rows.len(), 5);
        // Every taxonomy value appears at least once — the paper's claim
        // that the selection is representative.
        assert!(rows
            .iter()
            .any(|r| matches!(r.context, EmbeddingContext::Static)));
        assert!(rows
            .iter()
            .any(|r| matches!(r.context, EmbeddingContext::Dynamic)));
        assert!(rows
            .iter()
            .any(|r| matches!(r.schema, SchemaAwareness::Homogeneous)));
        assert!(rows
            .iter()
            .any(|r| matches!(r.schema, SchemaAwareness::Heterogeneous)));
        assert!(rows
            .iter()
            .any(|r| matches!(r.similarity, SimilarityContext::Local)));
        assert!(rows
            .iter()
            .any(|r| matches!(r.similarity, SimilarityContext::Global)));
    }

    #[test]
    fn gnem_is_the_only_global_method() {
        let rows = taxonomy();
        let globals: Vec<_> = rows
            .iter()
            .filter(|r| matches!(r.similarity, SimilarityContext::Global))
            .collect();
        assert_eq!(globals.len(), 1);
        assert_eq!(globals[0].algorithm, "GNEM");
    }
}
