//! Magellan-style matcher: automatically extracted similarity features
//! (similarity function × attribute) feeding a classical classifier
//! (Section IV-B). Four variants mirror the paper's Magellan-DT / -LR /
//! -RF / -SVM.

use crate::features::magellan_features;
use crate::Matcher;
use rlb_data::{MatchingTask, PairRef};
use rlb_ml::{
    Classifier, DecisionTree, LinearSvm, LogisticRegression, RandomForest, StandardScaler,
};
use rlb_util::{Error, Prng, Result};

/// Which classifier tops the Magellan feature stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MagellanModel {
    /// CART decision tree.
    DecisionTree,
    /// Logistic regression.
    LogisticRegression,
    /// Random forest.
    RandomForest,
    /// Linear SVM.
    Svm,
}

impl MagellanModel {
    /// Paper-style short name.
    pub fn name(&self) -> &'static str {
        match self {
            MagellanModel::DecisionTree => "Magellan-DT",
            MagellanModel::LogisticRegression => "Magellan-LR",
            MagellanModel::RandomForest => "Magellan-RF",
            MagellanModel::Svm => "Magellan-SVM",
        }
    }

    /// All four variants.
    pub fn all() -> [MagellanModel; 4] {
        [
            MagellanModel::DecisionTree,
            MagellanModel::LogisticRegression,
            MagellanModel::RandomForest,
            MagellanModel::Svm,
        ]
    }
}

enum Fitted {
    Tree(DecisionTree),
    LogReg(LogisticRegression),
    Forest(RandomForest),
    Svm(LinearSvm),
}

impl Fitted {
    fn score(&self, x: &[f64]) -> f64 {
        match self {
            Fitted::Tree(m) => m.score(x),
            Fitted::LogReg(m) => m.score(x),
            Fitted::Forest(m) => m.score(x),
            Fitted::Svm(m) => m.score(x),
        }
    }
}

/// Magellan matcher (blocking disabled, as in the paper's fair-comparison
/// setup: it consumes exactly the task's candidate pairs).
pub struct Magellan {
    model: MagellanModel,
    seed: u64,
    /// Cap on training pairs (stratified subsample beyond it). Classical
    /// Magellan pipelines label a bounded sample anyway; the cap keeps the
    /// expensive Monge-Elkan feature extraction tractable on the largest
    /// blocked candidate sets.
    pub max_train: usize,
    scaler: Option<StandardScaler>,
    fitted: Option<Fitted>,
}

impl Magellan {
    /// Unfitted matcher.
    pub fn new(model: MagellanModel, seed: u64) -> Self {
        Magellan {
            model,
            seed,
            max_train: 6000,
            scaler: None,
            fitted: None,
        }
    }

    fn featurize(&self, task: &MatchingTask, p: PairRef) -> Vec<f64> {
        let raw = magellan_features(task, p);
        match &self.scaler {
            Some(s) => s.transform(&raw),
            None => raw,
        }
    }
}

impl Matcher for Magellan {
    fn name(&self) -> String {
        self.model.name().to_string()
    }

    fn fit(&mut self, task: &MatchingTask) -> Result<()> {
        if task.train.is_empty() {
            return Err(Error::EmptyInput("Magellan training set"));
        }
        // Magellan trains on T; V is unused by the classical classifiers
        // (they have no epoch dimension to select over).
        let train = subsample(&task.train, self.max_train, self.seed);
        let raw: Vec<Vec<f64>> = train
            .iter()
            .map(|lp| magellan_features(task, lp.pair))
            .collect();
        let ys: Vec<bool> = train.iter().map(|lp| lp.is_match).collect();
        let scaler = StandardScaler::fit(&raw)?;
        let xs = scaler.transform_batch(&raw);
        self.scaler = Some(scaler);
        self.fitted = Some(match self.model {
            MagellanModel::DecisionTree => {
                let mut m = DecisionTree::new(self.seed);
                m.fit(&xs, &ys)?;
                Fitted::Tree(m)
            }
            MagellanModel::LogisticRegression => {
                let mut m = LogisticRegression::new(self.seed);
                // scikit-learn's default LogisticRegression is unweighted;
                // Magellan uses it as-is.
                m.class_weighted = false;
                m.fit(&xs, &ys)?;
                Fitted::LogReg(m)
            }
            MagellanModel::RandomForest => {
                let mut m = RandomForest::new(self.seed);
                m.fit(&xs, &ys)?;
                Fitted::Forest(m)
            }
            MagellanModel::Svm => {
                let mut m = LinearSvm::new(self.seed);
                // Unweighted hinge loss, like Magellan's default SVC — this
                // is what makes Magellan-SVM collapse on the imbalanced
                // benchmarks (Table IV shows 0.0–12.6 F1 on several).
                m.class_weighted = false;
                m.fit(&xs, &ys)?;
                Fitted::Svm(m)
            }
        });
        Ok(())
    }

    fn predict(&mut self, task: &MatchingTask, pairs: &[PairRef]) -> Vec<bool> {
        let fitted = self.fitted.as_ref().expect("Magellan::predict before fit");
        pairs
            .iter()
            .map(|&p| fitted.score(&self.featurize(task, p)) >= 0.5)
            .collect()
    }
}

/// Stratified subsample preserving the positive fraction.
fn subsample(pairs: &[rlb_data::LabeledPair], cap: usize, seed: u64) -> Vec<rlb_data::LabeledPair> {
    if pairs.len() <= cap {
        return pairs.to_vec();
    }
    let mut rng = Prng::seed_from_u64(seed ^ 0x3A6E);
    let pos: Vec<_> = pairs.iter().filter(|p| p.is_match).copied().collect();
    let neg: Vec<_> = pairs.iter().filter(|p| !p.is_match).copied().collect();
    let pos_take = (((pos.len() as f64 / pairs.len() as f64) * cap as f64).round() as usize)
        .clamp(1.min(pos.len()), pos.len());
    let neg_take = (cap - pos_take).min(neg.len());
    let mut out = Vec::with_capacity(pos_take + neg_take);
    for i in rng.sample_indices(pos.len(), pos_take) {
        out.push(pos[i]);
    }
    for i in rng.sample_indices(neg.len(), neg_take) {
        out.push(neg[i]);
    }
    rng.shuffle(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use crate::testtask::small;

    #[test]
    fn all_variants_work_on_easy_data() {
        let task = small(0.1, 21);
        for model in MagellanModel::all() {
            let mut m = Magellan::new(model, 7);
            let f1 = evaluate(&mut m, &task).unwrap().f1;
            assert!(f1 > 0.7, "{} got {f1:.3}", model.name());
        }
    }

    #[test]
    fn forest_beats_linear_variants_on_hard_data() {
        let task = small(0.65, 22);
        let f1 = |model| {
            let mut m = Magellan::new(model, 7);
            evaluate(&mut m, &task).unwrap().f1
        };
        let rf = f1(MagellanModel::RandomForest);
        let svm = f1(MagellanModel::Svm);
        assert!(
            rf + 0.02 >= svm,
            "forest {rf:.3} should not trail the linear SVM {svm:.3}"
        );
    }

    #[test]
    fn predict_before_fit_panics() {
        let task = small(0.3, 23);
        let mut m = Magellan::new(MagellanModel::DecisionTree, 7);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.predict(&task, &[task.test[0].pair])
        }));
        assert!(result.is_err());
    }

    #[test]
    fn deterministic() {
        let task = small(0.4, 24);
        let run = || {
            let mut m = Magellan::new(MagellanModel::RandomForest, 9);
            m.fit(&task).unwrap();
            let pairs: Vec<_> = task.test.iter().map(|lp| lp.pair).collect();
            m.predict(&task, &pairs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_training_errors() {
        let mut task = small(0.3, 25);
        task.train.clear();
        let mut m = Magellan::new(MagellanModel::LogisticRegression, 7);
        assert!(m.fit(&task).is_err());
    }
}
