//! ZeroER reimplementation: unsupervised matching with a two-component
//! Gaussian mixture over Magellan-style features (Section IV-B). It uses
//! *no labels at all* — the generative model is fitted on the blocked
//! candidate pairs, like the original's EM (with a size cap that
//! subsamples six-figure candidate sets before feature extraction).

use crate::features::magellan_features;
use crate::Matcher;
use rlb_data::{MatchingTask, PairRef};
use rlb_ml::GaussianMixture;
use rlb_util::{Error, Prng, Result};

/// Unsupervised Gaussian-mixture matcher.
pub struct ZeroEr {
    gmm: GaussianMixture,
    /// Cap on the pairs used to fit the mixture (random subsample beyond
    /// it). EM converges on a representative sample; the cap bounds the
    /// feature-extraction cost on six-figure candidate sets.
    pub max_fit: usize,
    fitted: bool,
}

impl ZeroEr {
    /// Unfitted matcher.
    pub fn new() -> Self {
        ZeroEr {
            gmm: GaussianMixture::new(),
            max_fit: 30_000,
            fitted: false,
        }
    }
}

impl Default for ZeroEr {
    fn default() -> Self {
        Self::new()
    }
}

impl Matcher for ZeroEr {
    fn name(&self) -> String {
        "ZeroER".to_string()
    }

    fn fit(&mut self, task: &MatchingTask) -> Result<()> {
        // Unsupervised: fit on the candidate pairs, ignoring labels
        // (random subsample beyond the cap).
        let mut pairs: Vec<_> = task.all_pairs().map(|lp| lp.pair).collect();
        if pairs.len() > self.max_fit {
            let mut rng = Prng::seed_from_u64(0x2E80);
            rng.shuffle(&mut pairs);
            pairs.truncate(self.max_fit);
        }
        let xs: Vec<Vec<f64>> = pairs.iter().map(|&p| magellan_features(task, p)).collect();
        if xs.len() < 4 {
            return Err(Error::EmptyInput("ZeroER needs at least 4 candidate pairs"));
        }
        self.gmm.fit(&xs)?;
        self.fitted = true;
        Ok(())
    }

    fn predict(&mut self, task: &MatchingTask, pairs: &[PairRef]) -> Vec<bool> {
        assert!(self.fitted, "ZeroEr::predict before fit");
        pairs
            .iter()
            .map(|&p| self.gmm.posterior(&magellan_features(task, p)) >= 0.5)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use crate::testtask::{small, small_with_hard};

    #[test]
    fn separates_easy_data_without_labels() {
        // Low noise AND mostly random negatives: the regime where the
        // paper's ZeroER shines (e.g. 98.8 on Ds1).
        let task = small_with_hard(0.08, 0.05, 31);
        let mut m = ZeroEr::new();
        let f1 = evaluate(&mut m, &task).unwrap().f1;
        assert!(f1 > 0.6, "unsupervised F1 {f1:.3}");
    }

    #[test]
    fn degrades_on_hard_data() {
        let easy = small_with_hard(0.08, 0.05, 32);
        let hard = small_with_hard(0.8, 0.6, 32);
        let f1 = |task| evaluate(&mut ZeroEr::new(), task).unwrap().f1;
        assert!(f1(&easy) > f1(&hard));
    }

    #[test]
    fn tiny_task_errors() {
        let mut task = small(0.3, 33);
        task.train.truncate(1);
        task.val.clear();
        task.test.clear();
        assert!(ZeroEr::new().fit(&task).is_err());
    }

    #[test]
    fn deterministic() {
        let task = small(0.4, 34);
        let run = || {
            let mut m = ZeroEr::new();
            m.fit(&task).unwrap();
            let pairs: Vec<_> = task.test.iter().map(|lp| lp.pair).collect();
            m.predict(&task, &pairs)
        };
        assert_eq!(run(), run());
    }
}
