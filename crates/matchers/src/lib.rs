//! The matching algorithms of Section IV.
//!
//! Three families behind one [`Matcher`] trait:
//!
//! 1. **Linear supervised** ([`esde`]) — the paper's six new ESDE algorithms
//!    (Algorithm 2): a per-feature threshold is learned on the training set,
//!    the best feature is selected on the validation set, and that single
//!    `(feature, threshold)` rule classifies the test set.
//! 2. **Non-neural, non-linear** ([`magellan`], [`zeroer`]) — a Magellan-style
//!    feature builder (similarity function × attribute) feeding DT / LR /
//!    RF / SVM classifiers, and an unsupervised ZeroER built on a Gaussian
//!    mixture.
//! 3. **Deep-learning simulations** ([`deep`]) — DeepMatcher, EMTransformer
//!    (-B/-R), DITTO, GNEM and HierMatcher, re-created at the level the
//!    paper's analysis needs: each occupies its cell of the Table-II
//!    taxonomy (static/dynamic embeddings × homogeneous/heterogeneous
//!    schema handling × local/global similarity context) and is trained with
//!    validation-based epoch selection on `rlb-nn`.
//!
//! Every matcher is deterministic under its seed. [`evaluate`] runs the full
//! Problem-1 protocol: fit on `T` + `V`, predict `C`, score with F1.

pub mod deep;
pub mod esde;
pub mod features;
pub mod magellan;
pub mod taxonomy;
pub mod zeroer;

pub use esde::{Esde, EsdeVariant};
pub use features::{StringTaskViews, TaskViewCache, TaskViews};
pub use magellan::{Magellan, MagellanModel};
pub use taxonomy::{taxonomy, TaxonomyRow};
pub use zeroer::ZeroEr;

use rlb_data::{MatchingTask, PairRef};
use rlb_ml::metrics::BinaryMetrics;
use rlb_util::Result;

/// A supervised (or unsupervised) matching algorithm.
pub trait Matcher {
    /// Display name, e.g. `"SA-ESDE"`, `"EMTransformer-R (40)"`.
    fn name(&self) -> String;

    /// Trains on the task's training and validation sets. Unsupervised
    /// matchers may ignore the labels but must still respect the split
    /// boundaries for anything label-dependent.
    fn fit(&mut self, task: &MatchingTask) -> Result<()>;

    /// Predicts match/non-match for the given pairs of the same task.
    /// Takes `&mut self` because neural forward passes reuse internal
    /// buffers.
    fn predict(&mut self, task: &MatchingTask, pairs: &[PairRef]) -> Vec<bool>;
}

/// Fits `matcher` on the task and evaluates it on the test set.
pub fn evaluate(matcher: &mut dyn Matcher, task: &MatchingTask) -> Result<BinaryMetrics> {
    matcher.fit(task)?;
    let pairs: Vec<PairRef> = task.test.iter().map(|lp| lp.pair).collect();
    let labels: Vec<bool> = task.test.iter().map(|lp| lp.is_match).collect();
    let preds = matcher.predict(task, &pairs);
    Ok(rlb_ml::metrics::confusion(&preds, &labels).metrics())
}

#[cfg(test)]
pub(crate) mod testtask {
    use rlb_data::MatchingTask;
    use rlb_synth::{BenchmarkProfile, DifficultyKnobs, Domain};

    /// Like [`small`] but with an explicit hard-negative share (the
    /// unsupervised-matcher tests need genuinely easy negatives: a Gaussian
    /// mixture cannot tell near-duplicate siblings apart without labels).
    pub fn small_with_hard(noise: f64, hard: f64, seed: u64) -> MatchingTask {
        let p = BenchmarkProfile {
            id: "unit",
            stands_for: "unit test",
            domain: Domain::Product,
            left_size: 150,
            right_size: 180,
            n_matches: 80,
            labeled_pairs: 400,
            positive_fraction: 0.18,
            knobs: DifficultyKnobs {
                match_noise: noise,
                hard_negative_fraction: hard,
                anchor_attrs: 1,
                dirty: false,
                style_noise: 0.03,
                right_terse: false,
                base_missing: 0.2 * noise,
            },
            seed,
        };
        rlb_synth::generate_task(&p)
    }

    /// A small, moderately difficult product benchmark for matcher tests.
    pub fn small(noise: f64, seed: u64) -> MatchingTask {
        let p = BenchmarkProfile {
            id: "unit",
            stands_for: "unit test",
            domain: Domain::Product,
            left_size: 150,
            right_size: 180,
            n_matches: 80,
            labeled_pairs: 400,
            positive_fraction: 0.18,
            knobs: DifficultyKnobs {
                match_noise: noise,
                hard_negative_fraction: 0.4,
                anchor_attrs: 1,
                dirty: false,
                style_noise: 0.03,
                right_terse: false,
                base_missing: 0.2 * noise,
            },
            seed,
        };
        rlb_synth::generate_task(&p)
    }
}
